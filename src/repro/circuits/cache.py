"""Session-level cache of compiled circuits, keyed by interned lineage.

One :class:`CircuitCache` lives on each :class:`~repro.db.session.ProbDB`
session: a warm query — same lineage DNF, possibly different tuple
probabilities — skips the :class:`~repro.engine.ConfidenceEngine`
entirely and answers with an O(|circuit|) evaluation.  Keys are the
(immutable, interned, cheaply hashable) DNFs themselves, so two queries
producing identical lineage share one compiled circuit no matter how
they were phrased.

Only *exact* circuits are cached by default: a partial circuit's value
is an interval whose width depends on the compile-time budget, which is
the engine's job to arbitrate, not the cache's.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterator, Optional, Tuple, Union

from ..core.dnf import DNF
from ..core.variables import VariableRegistry
from .circuit import Circuit

__all__ = ["CircuitCache", "CircuitCacheSnapshot"]

PathLike = Union[str, "os.PathLike[str]"]


class CircuitCache:
    """Bounded ``lineage DNF -> Circuit`` store with hit/miss counters.

    Like :class:`~repro.core.memo.DecompositionCache`, the cache clears
    wholesale when the entry cap is exceeded — circuits are rebuildable
    from the decomposition memo, so eviction is cheap and LRU
    bookkeeping stays off the lookup path.
    """

    __slots__ = (
        "entries", "max_entries", "hits", "misses", "_lock", "_version",
    )

    def __init__(self, max_entries: int = 4096) -> None:
        self.entries: Dict[DNF, Circuit] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: Guards mutations (and the stats counters) so a cache shared
        #: with the serving tier's request threads stays coherent; the
        #: hot read is still just a dict lookup under the GIL.
        self._lock = threading.Lock()
        #: Bumped on every mutation; snapshots carry the version they
        #: were cut at, so staleness is a cheap integer comparison.
        self._version = 0

    def get(self, lineage: DNF) -> Optional[Circuit]:
        # The read happens *under* the lock: an unlocked read races the
        # wholesale clear-on-overflow eviction in put(), so a hit could
        # be counted against an entry evicted a moment earlier (and a
        # caller pairing get() with ``version`` could observe a version
        # older than the miss it just caused).
        with self._lock:
            circuit = self.entries.get(lineage)
            if circuit is None:
                self.misses += 1
            else:
                self.hits += 1
        return circuit

    def put(
        self, lineage: DNF, circuit: Circuit, *, exact_only: bool = True
    ) -> bool:
        """Insert; returns whether the circuit was stored."""
        if exact_only and not circuit.is_exact:
            return False
        with self._lock:
            if len(self.entries) >= self.max_entries:
                self.entries = {}
            self.entries[lineage] = circuit
            self._version += 1
        return True

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, lineage: DNF) -> bool:
        return lineage in self.entries

    def clear(self) -> None:
        with self._lock:
            self.entries = {}
            self._version += 1

    def evict_intersecting(self, variable_ids) -> int:
        """Drop circuits whose lineage mentions any touched variable.

        Mutation-driven surgical eviction: disjoint entries survive and
        keep answering warm.  The surviving set is built as a fresh dict
        and swapped wholesale so live snapshots are never torn.  The
        version bumps only when something was actually removed — a
        no-op mutation must not invalidate serving snapshots.  Returns
        the number of circuits evicted.
        """
        touched = frozenset(variable_ids)
        if not touched:
            return 0
        with self._lock:
            survivors = {
                lineage: circuit
                for lineage, circuit in self.entries.items()
                if touched.isdisjoint(lineage.variable_ids)
            }
            removed = len(self.entries) - len(survivors)
            if removed:
                self.entries = survivors
                self._version += 1
        return removed

    def touch(self) -> int:
        """Bump the version without changing content; returns it.

        Commit marker for the mutation subsystem: tuple probabilities
        live in the registry (circuit atom leaves read them at eval
        time), so a probability-only commit changes answers without
        changing any cached circuit.  Touching forces serving snapshots
        and response caches keyed on ``version`` to refresh.
        """
        with self._lock:
            self._version += 1
            return self._version

    @property
    def version(self) -> int:
        """Mutation counter (monotone; equal versions ⇒ equal content)."""
        return self._version

    def snapshot(self) -> "CircuitCacheSnapshot":
        """An immutable point-in-time view of the cache contents.

        The serving tier hands snapshots to concurrent readers: lookups
        never contend with (or observe a torn state of) session-side
        compiles, and ``version`` identifies exactly which cache state
        answered a request.  O(entries) to cut; circuits are shared,
        not copied.
        """
        with self._lock:
            return CircuitCacheSnapshot(dict(self.entries), self._version)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> int:
        """Write every cached circuit (with its lineage key) to ``path``.

        The file is the versioned store of
        :mod:`repro.circuits.serialize`: self-contained variable/atom
        *names*, so it loads into any process regardless of
        intern-table state.  Returns the number of entries written.
        """
        from .serialize import save_circuit_store

        with self._lock:
            entries = dict(self.entries)
        return save_circuit_store(path, entries.items())

    @classmethod
    def load(
        cls,
        path: PathLike,
        registry: VariableRegistry,
        *,
        strict: bool = True,
        max_entries: int = 4096,
    ) -> "CircuitCache":
        """A fresh cache from a store written by :meth:`save`.

        Keys re-intern by name in this process, so a query whose
        lineage equals a stored entry's hits the cache exactly as it
        did in the saving session.  ``strict=False`` skips entries that
        reference atoms ``registry`` no longer defines instead of
        raising :class:`~repro.circuits.serialize.CircuitStoreError`.
        """
        cache = cls(max_entries=max_entries)
        cache.load_into(path, registry, strict=strict)
        return cache

    def load_into(
        self,
        path: PathLike,
        registry: VariableRegistry,
        *,
        strict: bool = True,
    ) -> int:
        """Merge a store into this cache; returns entries loaded.

        Keyless records (saved from bare circuits rather than a cache)
        cannot be looked up by lineage and are skipped.
        """
        from .serialize import load_circuit_store

        loaded = 0
        with self._lock:
            entries = dict(self.entries)
            for key, circuit in load_circuit_store(
                path, registry, strict=strict
            ):
                if key is None:
                    continue
                entries[key] = circuit
                loaded += 1
            self.entries = entries
            self._version += 1
        if self.max_entries < 2 * len(self.entries):
            # A warm-start that leaves too little headroom would be
            # wiped wholesale by put()'s eviction within a handful of
            # new compiles — losing every persisted circuit (and, on
            # close, overwriting the store with the near-empty
            # survivor).  Guarantee headroom of at least the loaded
            # set's own size before eviction can trigger.
            self.max_entries = 2 * len(self.entries)
        return loaded

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.entries),
        }

    def __repr__(self) -> str:
        return (
            f"CircuitCache({len(self.entries)} circuits, "
            f"hits={self.hits}, misses={self.misses})"
        )


class CircuitCacheSnapshot:
    """A read-only, point-in-time view of a :class:`CircuitCache`.

    The share-everything handle the serving tier distributes: lookups
    are plain dict reads on a private dict no writer ever touches
    (:meth:`CircuitCache.snapshot` copies the mapping, mutators swap
    the live dict wholesale), so any number of event-loop tasks and
    worker threads may read concurrently without locks.  ``version``
    is the cache's mutation counter at cut time — compare against
    ``cache.version`` to detect staleness.
    """

    __slots__ = ("_entries", "version")

    def __init__(self, entries: Dict[DNF, Circuit], version: int) -> None:
        self._entries = entries
        self.version = version

    def get(self, lineage: DNF) -> Optional[Circuit]:
        return self._entries.get(lineage)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lineage: DNF) -> bool:
        return lineage in self._entries

    def __iter__(self) -> Iterator[DNF]:
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[DNF, Circuit]]:
        return iter(self._entries.items())

    def __repr__(self) -> str:
        return (
            f"CircuitCacheSnapshot({len(self._entries)} circuits, "
            f"version={self.version})"
        )
