"""Session-level cache of compiled circuits, keyed by interned lineage.

One :class:`CircuitCache` lives on each :class:`~repro.db.session.ProbDB`
session: a warm query — same lineage DNF, possibly different tuple
probabilities — skips the :class:`~repro.engine.ConfidenceEngine`
entirely and answers with an O(|circuit|) evaluation.  Keys are the
(immutable, interned, cheaply hashable) DNFs themselves, so two queries
producing identical lineage share one compiled circuit no matter how
they were phrased.

Only *exact* circuits are cached by default: a partial circuit's value
is an interval whose width depends on the compile-time budget, which is
the engine's job to arbitrate, not the cache's.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.dnf import DNF
from .circuit import Circuit

__all__ = ["CircuitCache"]


class CircuitCache:
    """Bounded ``lineage DNF -> Circuit`` store with hit/miss counters.

    Like :class:`~repro.core.memo.DecompositionCache`, the cache clears
    wholesale when the entry cap is exceeded — circuits are rebuildable
    from the decomposition memo, so eviction is cheap and LRU
    bookkeeping stays off the lookup path.
    """

    __slots__ = ("entries", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = 4096) -> None:
        self.entries: Dict[DNF, Circuit] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, lineage: DNF) -> Optional[Circuit]:
        circuit = self.entries.get(lineage)
        if circuit is None:
            self.misses += 1
        else:
            self.hits += 1
        return circuit

    def put(
        self, lineage: DNF, circuit: Circuit, *, exact_only: bool = True
    ) -> bool:
        """Insert; returns whether the circuit was stored."""
        if exact_only and not circuit.is_exact:
            return False
        if len(self.entries) >= self.max_entries:
            self.entries.clear()
        self.entries[lineage] = circuit
        return True

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, lineage: DNF) -> bool:
        return lineage in self.entries

    def clear(self) -> None:
        self.entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.entries),
        }

    def __repr__(self) -> str:
        return (
            f"CircuitCache({len(self.entries)} circuits, "
            f"hits={self.hits}, misses={self.misses})"
        )
