"""Compiled multi-answer results: compile once, ask many questions.

:class:`CompiledResult` pairs every answer of a query with its compiled
:class:`~repro.circuits.Circuit` and exposes the workloads repeated
circuit evaluation unlocks:

* :meth:`evaluate` — all answer confidences under a new probability
  map, one linear sweep per circuit;
* :meth:`sensitivities` — per-answer ``∂confidence/∂p(tuple)`` for
  every input tuple (one backward sweep each);
* :meth:`condition` — clamp a variable across every answer (what-if
  conditioning), returning another :class:`CompiledResult`;
* :meth:`what_if_top_k` — re-rank the answers under hypothetical
  probabilities without touching the engine;
* :meth:`sweep` / :meth:`what_if_grid` — evaluate every answer under a
  whole list of override scenarios at once, vectorized through the
  :mod:`repro.circuits.kernels` numpy backend when available.

Obtained from :meth:`repro.db.session.QueryResult.compile`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .circuit import Bounds, Circuit, ProbOverrides

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sweep import SweepResult

__all__ = ["CompiledResult"]

AnswerValues = Tuple[Hashable, ...]


class CompiledResult:
    """A query's answers, each compiled into an arithmetic circuit."""

    __slots__ = ("pairs",)

    def __init__(
        self, pairs: Sequence[Tuple[AnswerValues, Circuit]]
    ) -> None:
        self.pairs = list(pairs)

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def answers(self) -> List[AnswerValues]:
        return [values for values, _circuit in self.pairs]

    @property
    def circuits(self) -> List[Circuit]:
        return [circuit for _values, circuit in self.pairs]

    @property
    def is_exact(self) -> bool:
        """True when every answer's circuit is exact (no residuals)."""
        return all(circuit.is_exact for _values, circuit in self.pairs)

    def __repr__(self) -> str:
        nodes = sum(len(circuit) for _values, circuit in self.pairs)
        state = "exact" if self.is_exact else "partial"
        return (
            f"CompiledResult({len(self.pairs)} answers, "
            f"{nodes} circuit nodes, {state})"
        )

    # -- evaluation ------------------------------------------------------
    def evaluate(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> List[Tuple[AnswerValues, float]]:
        """Answer confidences under ``prob_overrides`` — no engine work."""
        return [
            (values, circuit.evaluate(prob_overrides))
            for values, circuit in self.pairs
        ]

    def evaluate_bounds(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> List[Tuple[AnswerValues, Bounds]]:
        """Certified per-answer intervals (points for exact circuits)."""
        return [
            (values, circuit.evaluate_bounds(prob_overrides))
            for values, circuit in self.pairs
        ]

    def sensitivities(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> List[Tuple[AnswerValues, Dict[Hashable, float]]]:
        """Per-answer tuple sensitivities ``∂confidence/∂p(tuple)``.

        Each answer costs one forward plus one backward sweep and
        yields the derivative for *every* Boolean input variable at
        once (see :meth:`repro.circuits.Circuit.gradients`).
        """
        return [
            (values, circuit.gradients(prob_overrides))
            for values, circuit in self.pairs
        ]

    def condition(
        self, variable: Hashable, value: Hashable
    ) -> "CompiledResult":
        """All answers conditioned on ``variable = value`` (what-if)."""
        return CompiledResult(
            [
                (values, circuit.condition(variable, value))
                for values, circuit in self.pairs
            ]
        )

    def sweep(
        self,
        scenarios: Sequence[Optional[ProbOverrides]],
        *,
        vectorized: Optional[bool] = None,
    ) -> "SweepResult":
        """Every answer's confidence under every scenario, one call.

        Each scenario is an override map in the :meth:`evaluate`
        vocabulary; the result holds a ``(answers × scenarios)`` value
        grid.  With numpy available (``vectorized=None`` auto, or
        ``True`` to insist) each circuit is lowered once and the whole
        scenario batch flows through it as a matrix — the scalar
        fallback (``False``, or numpy missing) computes the identical
        grid one evaluation at a time.
        """
        from .sweep import SweepResult, sweep_values
        from .kernels import kernel_backend

        backend = kernel_backend(vectorized)
        values = [
            sweep_values(circuit, scenarios, vectorized=vectorized)
            for _values, circuit in self.pairs
        ]
        return SweepResult(self.answers, values, backend)

    def what_if_grid(
        self,
        variable: Hashable,
        probabilities: Sequence[float],
        *,
        vectorized: Optional[bool] = None,
    ) -> "SweepResult":
        """Sweep one Boolean tuple's probability across a grid.

        ``what_if_grid("t", [0.0, 0.1, ..., 1.0])`` answers "how does
        every answer's confidence respond as ``P(t)`` moves?" — the
        one-dimensional sensitivity scan, as a single vectorized sweep
        per answer circuit.
        """
        from .sweep import what_if_scenarios

        return self.sweep(
            what_if_scenarios(variable, probabilities),
            vectorized=vectorized,
        )

    def what_if_top_k(
        self,
        k: int,
        prob_overrides: Optional[ProbOverrides] = None,
    ) -> List:
        """The ``k`` most probable answers under hypothetical
        probabilities, as :class:`~repro.db.topk.RankedAnswer` rows.

        Pure circuit evaluation — one sweep per answer — so what-if
        re-ranking over a large answer set costs milliseconds instead
        of a fresh engine ranking run.  Partial circuits rank by
        interval midpoint and report their (sound) bounds.
        """
        from ..db.topk import RankedAnswer

        if k <= 0:
            raise ValueError("k must be positive")
        rows = []
        for values, circuit in self.pairs:
            lower, upper = circuit.evaluate_bounds(prob_overrides)
            rows.append(RankedAnswer(values, lower, upper, 0))
        # repr tie-break: answer tuples may hold mutually unorderable
        # value types, which would make a raw-tuple comparison raise.
        rows.sort(key=lambda row: (-row.midpoint(), repr(row.values)))
        return rows[:k]
