"""Lineage compilation: d-tree traces as reusable arithmetic circuits.

The decomposition structure the paper's algorithms discover — ``⊗``,
``⊙``, ``⊕``, clause products — is valid for *any* assignment of tuple
probabilities, yet a confidence computation normally folds it into one
number and throws it away.  This package keeps it:

* :func:`compile_circuit` replays a lineage's decomposition (through
  the shared :class:`~repro.core.memo.DecompositionCache`) into a flat,
  array-backed :class:`Circuit`;
* :class:`Circuit` re-evaluates under new probability maps in
  O(|circuit|), yields every tuple's sensitivity in one backward sweep,
  and conditions on variable assignments for what-if queries; partial
  circuits (node-budgeted compiles) carry residual-interval leaves and
  evaluate to sound bounds;
* :class:`CircuitCache` is the session-level store keyed by interned
  lineage (``ProbDB`` uses it to skip the engine on warm queries);
* :class:`CompiledResult` packages a whole answer set for
  compile-once/evaluate-many workloads
  (``QueryResult.compile()``);
* :mod:`repro.circuits.kernels` and :mod:`repro.circuits.sweep` are
  the vectorized layer: :class:`CircuitKernel` lowers a circuit into
  op-segmented numpy arrays so whole ``(scenarios × atoms)`` matrices
  evaluate in a few array passes (batch evaluation, bounds, gradients,
  and circuit-native Monte-Carlo world sampling), with a bit-identical
  scalar fallback when numpy — the optional ``repro[fast]`` extra — is
  not installed;
* :mod:`repro.circuits.incremental` is the cone-level invalidation pass
  behind the mutation subsystem (:mod:`repro.db.mutations`): a tuple
  change evicts only the circuits and decomposition cones whose
  variable sets intersect it, so every disjoint query stays warm;
* :mod:`repro.circuits.serialize` is the versioned binary codec that
  makes circuits durable and shippable: ``CircuitCache.save/load``
  persist a session's compiled circuits across restarts (by
  variable/atom *names*, so any process can load any store), and the
  sharded execution layer ships worker-compiled circuits and
  decomposition-cache slices back to the coordinator over the same
  format.
"""

from .cache import CircuitCache, CircuitCacheSnapshot
from .circuit import (
    KIND_ATOM,
    KIND_CONST,
    KIND_OR,
    KIND_PROD,
    KIND_RESIDUAL,
    KIND_SUM,
    Circuit,
)
from .compiled import CompiledResult
from .compiler import (
    CircuitCompilationStats,
    compile_circuit,
    expand_residuals,
)
from .incremental import (
    InvalidationReport,
    invalidate_variables,
    variable_ids_of,
)
from .kernels import (
    CircuitKernel,
    circuit_kernel,
    CircuitSampler,
    KernelUnavailableError,
    circuit_monte_carlo,
    kernel_backend,
    numpy_available,
)
from .serialize import (
    CircuitStoreError,
    circuit_store_info,
    load_circuit_store,
    save_circuit_store,
)

from .sweep import (
    SweepResult,
    refine_sweep_bounds,
    sweep_bounds,
    sweep_gradients,
    sweep_values,
    what_if_scenarios,
)

__all__ = [
    "Circuit",
    "CircuitCache",
    "CircuitCacheSnapshot",
    "CircuitCompilationStats",
    "CircuitKernel",
    "CircuitSampler",
    "CircuitStoreError",
    "CompiledResult",
    "InvalidationReport",
    "invalidate_variables",
    "variable_ids_of",
    "KernelUnavailableError",
    "SweepResult",
    "circuit_kernel",
    "circuit_monte_carlo",
    "circuit_store_info",
    "compile_circuit",
    "expand_residuals",
    "kernel_backend",
    "load_circuit_store",
    "numpy_available",
    "refine_sweep_bounds",
    "save_circuit_store",
    "sweep_bounds",
    "sweep_gradients",
    "sweep_values",
    "what_if_scenarios",
    "KIND_ATOM",
    "KIND_CONST",
    "KIND_OR",
    "KIND_PROD",
    "KIND_RESIDUAL",
    "KIND_SUM",
]
