"""Lineage compilation: d-tree traces as reusable arithmetic circuits.

The decomposition structure the paper's algorithms discover — ``⊗``,
``⊙``, ``⊕``, clause products — is valid for *any* assignment of tuple
probabilities, yet a confidence computation normally folds it into one
number and throws it away.  This package keeps it:

* :func:`compile_circuit` replays a lineage's decomposition (through
  the shared :class:`~repro.core.memo.DecompositionCache`) into a flat,
  array-backed :class:`Circuit`;
* :class:`Circuit` re-evaluates under new probability maps in
  O(|circuit|), yields every tuple's sensitivity in one backward sweep,
  and conditions on variable assignments for what-if queries; partial
  circuits (node-budgeted compiles) carry residual-interval leaves and
  evaluate to sound bounds;
* :class:`CircuitCache` is the session-level store keyed by interned
  lineage (``ProbDB`` uses it to skip the engine on warm queries);
* :class:`CompiledResult` packages a whole answer set for
  compile-once/evaluate-many workloads
  (``QueryResult.compile()``).
"""

from .cache import CircuitCache
from .circuit import (
    KIND_ATOM,
    KIND_CONST,
    KIND_OR,
    KIND_PROD,
    KIND_RESIDUAL,
    KIND_SUM,
    Circuit,
)
from .compiled import CompiledResult
from .compiler import CircuitCompilationStats, compile_circuit

__all__ = [
    "Circuit",
    "CircuitCache",
    "CircuitCompilationStats",
    "CompiledResult",
    "compile_circuit",
    "KIND_ATOM",
    "KIND_CONST",
    "KIND_OR",
    "KIND_PROD",
    "KIND_RESIDUAL",
    "KIND_SUM",
]
