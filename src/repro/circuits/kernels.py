"""Vectorized numpy kernels over compiled circuits.

A :class:`~repro.circuits.Circuit` evaluates one probability world per
Python sweep; a sensitivity grid over thousands of worlds pays thousands
of interpreter passes over the same node list.  This module lowers a
circuit **once** into contiguous op-segmented arrays — nodes grouped by
``(topological level, kind, arity)`` — so a whole ``(scenarios × atoms)``
float64 matrix flows through the circuit in a handful of numpy passes:

* :meth:`CircuitKernel.evaluate_batch` — all scenario probabilities in
  one forward sweep (interval midpoints on partial circuits, exactly
  like :meth:`Circuit.evaluate`);
* :meth:`CircuitKernel.bounds_batch` — two forward lanes give certified
  ``[lower, upper]`` columns, residual leaves broadcast to their stored
  bounds and widened to ``[0, 1]`` per scenario where overrides touch
  their variables;
* :meth:`CircuitKernel.gradients_batch` — one vectorized backward sweep
  yields every scenario's full adjoint row (reverse-mode, prefix/suffix
  products, robust to zero factors);
* :meth:`CircuitKernel.sample_matrix` / :class:`CircuitSampler` /
  :func:`circuit_monte_carlo` — Bernoulli world-matrices drawn per
  *variable* and evaluated on the circuit, replacing per-sample lineage
  evaluation in the engine's Monte-Carlo rung when an exact circuit is
  cached.

Bit-identity with the scalar sweeps is a design invariant, not an
accident: every accumulation loops over the **arity axis** in the same
left-to-right order as the scalar code (``np.prod``/``np.add.reduce``
use pairwise evaluation orders that would round differently), so batch
evaluation and bounds agree with :meth:`Circuit.evaluate` /
:meth:`Circuit.evaluate_bounds` to the last bit on the same inputs.
Gradients accumulate parent contributions in a different order than the
scalar backward sweep and agree to ~1e-12 instead.

numpy is an *optional* extra (``pip install repro[fast]``): everything
here degrades gracefully when it is missing — callers consult
:func:`kernel_backend` and keep the pure-Python path.  Setting the
``REPRO_NO_NUMPY`` environment variable before import forces the scalar
backend even where numpy is installed (the CI fallback leg uses this).
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.events import Clause
from ..core.variables import (
    VariableRegistry,
    lookup_atom,
    variable_name,
)
from ..mc.dklr import MonteCarloResult, approximation_algorithm_estimate
from .circuit import (
    KIND_ATOM,
    KIND_CONST,
    KIND_OR,
    KIND_PROD,
    KIND_RESIDUAL,
    KIND_SUM,
    Circuit,
)

__all__ = [
    "BACKEND_NUMPY",
    "BACKEND_SCALAR",
    "CircuitKernel",
    "CircuitSampler",
    "KernelUnavailableError",
    "circuit_kernel",
    "circuit_monte_carlo",
    "clause_probability_batch",
    "kernel_backend",
    "numpy_available",
    "require_numpy",
]

#: Backend names reported by :func:`kernel_backend` and
#: ``EngineConfig.describe()["kernel_backend"]``.
BACKEND_NUMPY = "numpy"
BACKEND_SCALAR = "scalar"

#: Environment switch forcing the scalar backend even when numpy is
#: importable — lets the differential suite (and the CI fallback leg)
#: exercise the pure-Python path without uninstalling anything.
DISABLE_ENV = "REPRO_NO_NUMPY"

try:
    if os.environ.get(DISABLE_ENV):
        _np = None
    else:
        import numpy as _np  # type: ignore[no-redef]
except ImportError:  # pragma: no cover - exercised via DISABLE_ENV
    _np = None


class KernelUnavailableError(RuntimeError):
    """Raised when vectorized execution is *forced* but numpy is absent."""


def numpy_available() -> bool:
    """True when the numpy backend can be used in this process."""
    return _np is not None


def require_numpy() -> Any:
    """The numpy module, or :class:`KernelUnavailableError` if missing."""
    if _np is None:
        raise KernelUnavailableError(
            "vectorized kernels require numpy, which is not importable "
            "in this environment (or REPRO_NO_NUMPY is set). Install "
            "the optional extra — pip install repro[fast] — or leave "
            "EngineConfig.vectorized unset for the automatic scalar "
            "fallback."
        )
    return _np


def kernel_backend(vectorized: Optional[bool] = None) -> str:
    """Resolve a ``vectorized`` preference to a backend name.

    ``None`` (auto) picks numpy when importable and falls back to the
    scalar sweeps otherwise; ``False`` forces scalar; ``True`` demands
    numpy and raises :class:`KernelUnavailableError` when it is missing.
    """
    if vectorized is False:
        return BACKEND_SCALAR
    if _np is None:
        if vectorized is True:
            require_numpy()
        return BACKEND_SCALAR
    return BACKEND_NUMPY


# ----------------------------------------------------------------------
# Registry probability window
# ----------------------------------------------------------------------
def _registry_window(registry: VariableRegistry) -> Tuple[Any, int]:
    """A dense float64 view of the registry's atom-probability window.

    Unregistered slots hold NaN so batched consumers can detect them and
    fall back to the scalar lookup.  The array is cached on the registry
    keyed by window length; a slot registered *in place* after caching
    (a ``None`` hole filled without growing the list) shows up as a
    stale NaN, which only costs the fallback — registered probabilities
    never change, so a cached non-NaN entry is always current.
    """
    np = require_numpy()
    probs = registry._atom_probs
    cached = getattr(registry, "_kernel_prob_window", None)
    if cached is not None and cached[0] == len(probs):
        return cached[1], registry._atom_base
    window = np.fromiter(
        (float("nan") if prob is None else prob for prob in probs),
        dtype=np.float64,
        count=len(probs),
    )
    registry._kernel_prob_window = (len(probs), window)
    return window, registry._atom_base


def clause_probability_batch(
    clauses: Sequence[Clause], registry: VariableRegistry
) -> Optional[List[float]]:
    """Batched :meth:`Clause.probability` over the dense prob window.

    Returns ``None`` when numpy is unavailable (callers keep their
    scalar loop).  Values are bit-identical to the scalar method: the
    per-clause product multiplies atom probabilities left-to-right in
    ``atom_ids`` order, and clauses touching atoms outside the dense
    window (overflow/unregistered slots surface as NaN) re-run the
    scalar method individually.
    """
    if _np is None:
        return None
    np = _np
    window, base = _registry_window(registry)
    size = window.shape[0]
    out: List[float] = [1.0] * len(clauses)
    by_arity: Dict[int, List[int]] = {}
    for position, clause in enumerate(clauses):
        arity = len(clause.atom_ids)
        if arity:
            by_arity.setdefault(arity, []).append(position)
    for arity, positions in by_arity.items():
        ids = np.array(
            [clauses[position].atom_ids for position in positions],
            dtype=np.int64,
        )
        index = ids - base
        if size:
            valid = (index >= 0) & (index < size)
            gathered = window[np.clip(index, 0, size - 1)]
            gathered[~valid] = np.nan
        else:
            gathered = np.full(index.shape, np.nan)
        acc = gathered[:, 0].copy()
        for column in range(1, arity):
            acc *= gathered[:, column]
        values = acc.tolist()
        for row, position in enumerate(positions):
            value = values[row]
            if value != value:  # NaN: overflow or stale window slot
                value = clauses[position].probability(registry)
            out[position] = value
    return out


# ----------------------------------------------------------------------
# The circuit kernel
# ----------------------------------------------------------------------
#: A frozenset per scenario of the variable ids its overrides touch —
#: residual leaves whose variables intersect it void their stored
#: bounds for that scenario (exactly the scalar ``touched`` semantics).
TouchedSets = Optional[Sequence[FrozenSet[int]]]


class CircuitKernel:
    """A :class:`Circuit` lowered to op-segmented numpy arrays.

    Lowering is a one-time O(nodes + edges) Python pass; every batch
    entry point afterwards runs a fixed sequence of numpy array ops.
    Input matrices are ``(scenarios, atoms)`` float64 with columns in
    :attr:`atom_ids` order (:meth:`base_matrix` builds the base-
    probability matrix to patch scenario overrides into).

    Conditioning is honoured: atoms pinned by :meth:`Circuit.condition`
    override their matrix columns, exactly as the scalar sweeps apply
    ``_pinned`` last.
    """

    __slots__ = (
        "circuit",
        "size",
        "atom_ids",
        "atom_index",
        "_atom_rows",
        "_const_rows",
        "_const_vals",
        "_pinned_rows",
        "_pinned_vals",
        "_residual_rows",
        "_residual_low",
        "_residual_high",
        "_residual_vids",
        "_groups",
        "_sample_plans",
    )

    def __init__(self, circuit: Circuit) -> None:
        np = require_numpy()
        self.circuit = circuit
        self.size = len(circuit.kinds)
        #: Column order of every input matrix (node-emission order of
        #: the compiler — deterministic per circuit).
        self.atom_ids: List[int] = list(circuit.atom_nodes.keys())
        self.atom_index: Dict[int, int] = {
            atom_id: column for column, atom_id in enumerate(self.atom_ids)
        }
        self._atom_rows = np.array(
            [circuit.atom_nodes[atom_id] for atom_id in self.atom_ids],
            dtype=np.int64,
        )
        const_rows: List[int] = []
        const_vals: List[float] = []
        residual_rows: List[int] = []
        residual_low: List[float] = []
        residual_high: List[float] = []
        residual_vids: List[FrozenSet[int]] = []

        kinds = circuit.kinds
        arg0 = circuit.arg0
        arg1 = circuit.arg1
        children = circuit.children
        levels = [0] * self.size
        # (level, kind, arity) -> ([node index], [child spans])
        grouped: Dict[
            Tuple[int, int, int], Tuple[List[int], List[List[int]]]
        ] = {}
        for index in range(self.size):
            kind = kinds[index]
            if kind == KIND_CONST:
                const_rows.append(index)
                const_vals.append(circuit.consts[arg0[index]])
            elif kind == KIND_RESIDUAL:
                low, high, vids = circuit.residuals[arg0[index]]
                residual_rows.append(index)
                residual_low.append(low)
                residual_high.append(high)
                residual_vids.append(vids)
            elif kind != KIND_ATOM:
                span = list(children[arg0[index]:arg1[index]])
                if not span:
                    # Degenerate inner node (never emitted by the
                    # compiler): its scalar value is the fold identity.
                    const_rows.append(index)
                    const_vals.append(0.0 if kind != KIND_PROD else 1.0)
                    continue
                level = 1 + max(levels[child] for child in span)
                levels[index] = level
                key = (level, kind, len(span))
                bucket = grouped.get(key)
                if bucket is None:
                    bucket = ([], [])
                    grouped[key] = bucket
                bucket[0].append(index)
                bucket[1].append(span)

        self._const_rows = np.array(const_rows, dtype=np.int64)
        self._const_vals = np.array(const_vals, dtype=np.float64)
        pinned = circuit._pinned
        self._pinned_rows = np.array(
            [circuit.atom_nodes[atom_id] for atom_id in pinned],
            dtype=np.int64,
        )
        self._pinned_vals = np.array(
            list(pinned.values()), dtype=np.float64
        )
        self._residual_rows = np.array(residual_rows, dtype=np.int64)
        self._residual_low = np.array(residual_low, dtype=np.float64)
        self._residual_high = np.array(residual_high, dtype=np.float64)
        self._residual_vids = residual_vids
        #: Level-ordered op segments: ``(kind, nodes (m,), spans (m, arity))``.
        self._groups: List[Tuple[int, Any, Any]] = [
            (
                key[1],
                np.array(nodes, dtype=np.int64),
                np.array(spans, dtype=np.int64),
            )
            for key, (nodes, spans) in sorted(
                grouped.items(), key=lambda item: item[0]
            )
        ]
        self._sample_plans: Optional[List[Tuple[Any, List[Tuple[int, int]]]]]
        self._sample_plans = None

    # -- introspection ---------------------------------------------------
    @property
    def atom_count(self) -> int:
        return len(self.atom_ids)

    def __repr__(self) -> str:
        return (
            f"CircuitKernel({self.size} nodes, {self.atom_count} atom "
            f"columns, {len(self._groups)} op segments)"
        )

    # -- input matrices --------------------------------------------------
    def base_matrix(self, scenarios: int) -> Any:
        """A ``(scenarios, atoms)`` matrix of base registry probabilities.

        Patch scenario overrides into rows of the result before calling
        the batch entry points (pinned atoms need no patching — the
        kernel clamps them regardless).
        """
        np = require_numpy()
        registry = self.circuit.registry
        base = np.array(
            [
                registry.atom_probability(atom_id)
                for atom_id in self.atom_ids
            ],
            dtype=np.float64,
        )
        return np.tile(base, (max(0, scenarios), 1))

    def _check_matrix(self, prob_matrix: Any) -> Any:
        np = require_numpy()
        matrix = np.asarray(prob_matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.atom_count:
            raise ValueError(
                f"prob_matrix must be (scenarios, {self.atom_count}) "
                f"for this circuit, got shape {getattr(matrix, 'shape', None)}"
            )
        return matrix

    # -- forward sweeps --------------------------------------------------
    def _forward_plane(
        self, matrix: Any, residual_plane: Optional[Any]
    ) -> Any:
        """One batched forward sweep; returns the (nodes, S) value plane.

        ``matrix`` is (S, atoms); ``residual_plane`` is (residuals, S)
        or None for exact circuits.  Accumulations loop the arity axis
        left-to-right for bit-identity with the scalar ``_forward``.
        """
        np = require_numpy()
        scenarios = matrix.shape[0]
        values = np.empty((self.size, scenarios), dtype=np.float64)
        if self._const_rows.size:
            values[self._const_rows] = self._const_vals[:, None]
        if self._atom_rows.size:
            values[self._atom_rows] = matrix.T
        if self._pinned_rows.size:
            values[self._pinned_rows] = self._pinned_vals[:, None]
        if residual_plane is not None and self._residual_rows.size:
            values[self._residual_rows] = residual_plane
        for kind, nodes, spans in self._groups:
            arity = spans.shape[1]
            if kind == KIND_PROD:
                acc = values[spans[:, 0]]
                for column in range(1, arity):
                    acc *= values[spans[:, column]]
            elif kind == KIND_OR:
                acc = 1.0 - values[spans[:, 0]]
                for column in range(1, arity):
                    acc *= 1.0 - values[spans[:, column]]
                acc = 1.0 - acc
            else:  # KIND_SUM
                acc = values[spans[:, 0]]
                for column in range(1, arity):
                    acc += values[spans[:, column]]
                np.minimum(acc, 1.0, out=acc)
            values[nodes] = acc
        return values

    def _residual_planes(
        self, scenarios: int, touched: TouchedSets
    ) -> Tuple[Any, Any]:
        """(residuals, S) lower/upper planes with per-scenario voiding."""
        np = require_numpy()
        low = np.tile(self._residual_low[:, None], (1, scenarios))
        high = np.tile(self._residual_high[:, None], (1, scenarios))
        if touched is not None:
            by_set: Dict[FrozenSet[int], List[int]] = {}
            for scenario, touched_set in enumerate(touched):
                if touched_set:
                    by_set.setdefault(touched_set, []).append(scenario)
            for touched_set, columns in by_set.items():
                cols = np.array(columns, dtype=np.int64)
                for row, vids in enumerate(self._residual_vids):
                    if not touched_set.isdisjoint(vids):
                        low[row, cols] = 0.0
                        high[row, cols] = 1.0
        return low, high

    def evaluate_batch(
        self, prob_matrix: Any, touched: TouchedSets = None
    ) -> Any:
        """Per-scenario probabilities, one batched sweep — the
        vectorized :meth:`Circuit.evaluate`.

        Exact circuits return the exact column; partial circuits the
        per-scenario interval midpoints of :meth:`bounds_batch` (with
        ``touched`` widening residuals per scenario).
        """
        np = require_numpy()
        matrix = self._check_matrix(prob_matrix)
        scenarios = matrix.shape[0]
        if not self.size:
            return np.zeros(scenarios, dtype=np.float64)
        if self.circuit.is_exact:
            values = self._forward_plane(matrix, None)
            return values[-1].copy()
        bounds = self.bounds_batch(matrix, touched)
        return (bounds[:, 0] + bounds[:, 1]) / 2.0

    def bounds_batch(
        self, prob_matrix: Any, touched: TouchedSets = None
    ) -> Any:
        """Certified per-scenario ``[lower, upper]`` columns, shape
        (scenarios, 2) — the vectorized :meth:`Circuit.evaluate_bounds`.

        Exact circuits return point intervals.  Partial circuits run
        the two interval lanes as independent forward sweeps (the
        Prop. 5.4 combination formulas are componentwise monotone, so
        the lanes never interact); residual leaves broadcast their
        stored bounds, widened to ``[0, 1]`` in the scenarios whose
        ``touched`` sets intersect their variables.
        """
        np = require_numpy()
        matrix = self._check_matrix(prob_matrix)
        scenarios = matrix.shape[0]
        if not self.size:
            return np.zeros((scenarios, 2), dtype=np.float64)
        if self.circuit.is_exact:
            values = self._forward_plane(matrix, None)
            root = values[-1]
            return np.stack([root, root], axis=1)
        low_plane, high_plane = self._residual_planes(scenarios, touched)
        lower = self._forward_plane(matrix, low_plane)[-1]
        upper = self._forward_plane(matrix, high_plane)[-1]
        return np.stack([lower, upper], axis=1)

    # -- backward sweep --------------------------------------------------
    def gradients_batch(
        self, prob_matrix: Any, touched: TouchedSets = None
    ) -> Any:
        """Per-scenario atom adjoints ``∂P/∂p(atom)``, shape
        (scenarios, atoms) with columns in :attr:`atom_ids` order — the
        vectorized :meth:`Circuit.atom_gradients`.

        One forward plus one batched backward sweep for *all* scenarios
        and *all* atoms.  The forward linearization point matches the
        scalar sweep (residual leaves at their — possibly widened —
        interval midpoints); parent contributions accumulate in level
        order rather than node order, so agreement with the scalar
        adjoints is ~1e-12, not bit-exact.
        """
        np = require_numpy()
        matrix = self._check_matrix(prob_matrix)
        scenarios = matrix.shape[0]
        if not self.size or not self.atom_count:
            return np.zeros((scenarios, self.atom_count), dtype=np.float64)
        if self.circuit.is_exact:
            residual_plane = None
        else:
            low_plane, high_plane = self._residual_planes(
                scenarios, touched
            )
            residual_plane = (low_plane + high_plane) / 2.0
        values = self._forward_plane(matrix, residual_plane)
        adjoints = np.zeros((self.size, scenarios), dtype=np.float64)
        adjoints[-1] = 1.0
        for kind, nodes, spans in reversed(self._groups):
            node_adjoint = adjoints[nodes]
            arity = spans.shape[1]
            if kind == KIND_SUM:
                for column in range(arity):
                    np.add.at(adjoints, spans[:, column], node_adjoint)
                continue
            # PROD / OR: ∂(Π tⱼ)/∂tᵢ = Π_{j≠i} tⱼ via prefix/suffix
            # products (zero-factor robust).  For ⊗ the terms are the
            # complements and the two sign flips cancel (see
            # Circuit._push_product).
            if kind == KIND_OR:
                terms = [
                    1.0 - values[spans[:, column]]
                    for column in range(arity)
                ]
            else:
                terms = [
                    values[spans[:, column]] for column in range(arity)
                ]
            prefix = np.ones_like(node_adjoint)
            prefixes = []
            for column in range(arity):
                prefixes.append(prefix)
                if column + 1 < arity:
                    prefix = prefix * terms[column]
            suffix = np.ones_like(node_adjoint)
            for column in range(arity - 1, -1, -1):
                contribution = node_adjoint * prefixes[column] * suffix
                np.add.at(adjoints, spans[:, column], contribution)
                if column:
                    suffix = suffix * terms[column]
        return adjoints[self._atom_rows].T

    # -- Monte Carlo -----------------------------------------------------
    def _build_sample_plans(self) -> List[Tuple[Any, List[Tuple[int, int]]]]:
        """Per-variable inverse-CDF plans for world sampling.

        One plan per unpinned circuit variable: the cumulative
        distribution over the registry's (deterministic) domain order,
        plus the matrix columns of the domain values that actually have
        input nodes.  Conditioned variables are skipped — their atom
        rows are clamped in the forward sweep regardless of input.
        """
        np = require_numpy()
        circuit = self.circuit
        registry = circuit.registry
        plans: List[Tuple[Any, List[Tuple[int, int]]]] = []
        for var_id in circuit.var_atoms:
            if var_id in circuit._pinned_vids:
                continue
            name = variable_name(var_id)
            domain = registry.domain(name)
            cumulative = np.cumsum(
                [registry.probability(name, value) for value in domain]
            )
            cumulative[-1] = 1.0
            columns: List[Tuple[int, int]] = []
            for value_index, value in enumerate(domain):
                atom_id, _vid = lookup_atom(name, value)
                if atom_id is not None and atom_id in self.atom_index:
                    columns.append((value_index, self.atom_index[atom_id]))
            plans.append((cumulative, columns))
        return plans

    def sample_matrix(self, count: int, rng: Any) -> Any:
        """``count`` Bernoulli worlds as a 0/1 ``(count, atoms)`` matrix.

        Each unpinned variable is drawn once from its registry
        distribution (inverse-CDF on uniform draws from ``rng``, a
        ``numpy.random.Generator``) and expanded into indicator columns
        for its atoms, so :meth:`evaluate_batch` on the result yields
        the 0/1 truth values of the lineage in those worlds — the
        circuit's ⊕ branches are exclusive and exhaustive, ⊗/⊙ reduce
        to or/and on indicator inputs.
        """
        np = require_numpy()
        if self._sample_plans is None:
            self._sample_plans = self._build_sample_plans()
        matrix = np.zeros((count, self.atom_count), dtype=np.float64)
        for cumulative, columns in self._sample_plans:
            draws = rng.random(count)
            picks = np.searchsorted(cumulative, draws, side="right")
            np.minimum(picks, len(cumulative) - 1, out=picks)
            for value_index, column in columns:
                matrix[:, column] = picks == value_index
        return matrix

    def sample_worlds(
        self, count: int, rng_seed: Optional[int] = None
    ) -> Any:
        """``count`` sampled truth values of the lineage, shape (count,).

        Convenience wrapper: draws :meth:`sample_matrix` worlds with a
        fresh ``default_rng(rng_seed)`` and evaluates them.  Only exact
        circuits induce a sampleable distribution — partial circuits
        raise (their residual leaves are intervals, not events).
        """
        np = require_numpy()
        if not self.circuit.is_exact:
            raise ValueError(
                "sample_worlds needs an exact circuit: residual leaves "
                "of a partial circuit are bounds, not sampleable events"
            )
        rng = np.random.default_rng(rng_seed)
        return self.evaluate_batch(self.sample_matrix(count, rng))


def circuit_kernel(circuit: Circuit) -> CircuitKernel:
    """The circuit's lowered kernel, built once and cached on it.

    Lowering is O(nodes + edges) of Python work — wasted when repeated
    per sweep call (and per serving request).  The kernel is cached on
    the :class:`Circuit` instance itself; every derivation that could
    invalidate it (``condition()``, ``expand_residuals``) returns a new
    Circuit object, so object identity is the invalidation rule and a
    cached kernel can never disagree with its circuit.  Benign under
    concurrent readers: the only race is two threads lowering the same
    circuit once each, and either result is equivalent.
    """
    kernel = circuit._kernel
    if kernel is None:
        kernel = CircuitKernel(circuit)
        circuit._kernel = kernel
    return kernel  # type: ignore[return-value]


class CircuitSampler:
    """A chunked circuit-world sampler with the DKLR unit interface.

    :meth:`sample_unit` returns one 0/1 truth value per call — exactly
    the ``sample`` callable :func:`~repro.mc.dklr.approximation_algorithm_estimate`
    consumes — but draws and evaluates worlds in vectorized blocks of
    ``chunk`` under the hood, so the per-sample Python cost is a buffer
    index instead of a full lineage evaluation.  Deterministic for a
    given ``seed`` regardless of how many samples the driver consumes.
    """

    __slots__ = ("kernel", "_rng", "_chunk", "_buffer", "_cursor")

    def __init__(
        self,
        circuit: Circuit,
        *,
        seed: Optional[int] = None,
        chunk: int = 1024,
        kernel: Optional[CircuitKernel] = None,
    ) -> None:
        np = require_numpy()
        if not circuit.is_exact:
            raise ValueError(
                "CircuitSampler needs an exact circuit: residual leaves "
                "of a partial circuit are bounds, not sampleable events"
            )
        self.kernel = kernel if kernel is not None else CircuitKernel(circuit)
        self._rng = np.random.default_rng(seed)
        self._chunk = max(1, int(chunk))
        self._buffer: Optional[Any] = None
        self._cursor = 0

    def sample_block(self, count: int) -> Any:
        """``count`` sampled lineage truth values, shape (count,)."""
        kernel = self.kernel
        return kernel.evaluate_batch(
            kernel.sample_matrix(count, self._rng)
        )

    def sample_unit(self) -> float:
        """One sampled truth value in ``[0, 1]`` (the DKLR interface)."""
        if self._buffer is None or self._cursor >= self._buffer.shape[0]:
            self._buffer = self.sample_block(self._chunk)
            self._cursor = 0
        value = self._buffer[self._cursor]
        self._cursor += 1
        return float(value)


def circuit_monte_carlo(
    circuit: Circuit,
    *,
    epsilon: float,
    delta: float,
    seed: Optional[int] = None,
    max_samples: Optional[int] = None,
    chunk: int = 1024,
) -> MonteCarloResult:
    """(ε, δ)-relative MC estimate of ``P(Φ)`` sampled *on the circuit*.

    Drives the same DKLR 𝒜𝒜 driver as the scalar ``aconf`` rung — so
    the result carries identical interval semantics
    (``Pr[|p − p̂| ≥ ε·p] ≤ δ`` when not capped, plain running average
    flagged ``capped`` when ``max_samples`` cut the run short) — but
    each estimator invocation is a vectorized circuit-world sample
    instead of a Python Karp–Luby round.  The estimator is the 0/1
    world indicator (mean exactly ``P(Φ)``), unbiased because an exact
    circuit evaluates indicator inputs to the lineage's truth value.
    """
    sampler = CircuitSampler(circuit, seed=seed, chunk=chunk)
    run = approximation_algorithm_estimate(
        sampler.sample_unit, epsilon, delta, max_samples=max_samples
    )
    return MonteCarloResult(
        min(1.0, run.estimate), run.samples, run.capped
    )
