"""repro — approximate confidence computation in probabilistic databases.

A faithful, self-contained reproduction of

    Dan Olteanu, Jiewen Huang, Christoph Koch.
    "Approximate Confidence Computation in Probabilistic Databases."
    ICDE 2010.

The library provides:

* :mod:`repro.core` — DNFs over discrete random variables (interned to
  dense integer ids for hardware-speed set algebra), d-tree compilation,
  the Fig. 3 bounds heuristic, and the incremental ε-approximation
  algorithm with leaf closing (the paper's contribution);
* :mod:`repro.engine` — the :class:`ConfidenceEngine` planner: one
  ``compute()`` entry point that auto-selects read-once → SPROUT →
  d-tree ε-approximation → Monte-Carlo per query/lineage, a batched
  anytime ``compute_many()`` that round-robins refinement across answer
  sets, and the frozen :class:`EngineConfig` policy bundle every path
  honours;
* :mod:`repro.engine_parallel` — the sharded execution layer:
  :class:`ShardedBatchComputation` fans batched computation out across
  a process/thread pool (``EngineConfig(workers=…)``), one engine and
  decomposition cache per worker, work-stealing refinement, and a
  deterministic merge;
* :mod:`repro.db` — a probabilistic database substrate topped by the
  :class:`ProbDB` session façade: ``ProbDB(database).sql(...)`` /
  ``.query(...)`` return lazy :class:`QueryResult` objects exposing
  ``answers() / confidences() / bounds() / top_k() / explain()``, all
  sharing one engine, cache, and interned registry per session;
* :mod:`repro.mc` — the Karp–Luby / Dagum–Karp–Luby–Ross ``aconf``
  baseline used by MystiQ and MayBMS;
* :mod:`repro.datasets` — the paper's workloads: probabilistic TPC-H,
  random graphs, and social networks with the motif queries.

Quickstart
----------
>>> from repro import VariableRegistry, DNF, ProbDB, EngineConfig
>>> reg = VariableRegistry.from_boolean_probabilities(
...     {"x": 0.3, "y": 0.2, "z": 0.7, "v": 0.8})
>>> phi = DNF.from_positive_clauses([["x", "y"], ["x", "z"], ["v"]])
>>> db = ProbDB.from_registry(reg, EngineConfig(epsilon=0.01))
>>> abs(db.confidence(phi).probability - 0.8456) <= 0.01
True
"""

from .core import (
    ABSOLUTE,
    RELATIVE,
    ApproximationResult,
    Atom,
    Clause,
    DNF,
    DTree,
    VariableRegistry,
    approximate_probability,
    brute_force_probability,
    compile_dnf,
    exact_probability,
    exact_probability_compiled,
    independent_bounds,
    make_variable_selector,
    read_once_probability,
)
from .circuits import (
    Circuit,
    CircuitCache,
    CircuitKernel,
    CircuitSampler,
    CircuitStoreError,
    CompiledResult,
    KernelUnavailableError,
    SweepResult,
    compile_circuit,
    kernel_backend,
)
from .engine import (
    BatchComputation,
    ConfidenceEngine,
    EngineConfig,
    EngineResult,
    STRATEGY_LADDER,
)
from .engine_parallel import ShardedBatchComputation, WorkerPool
from .db.explain import InfluenceReport, rank_influence
from .db.session import BoundsSnapshot, ProbDB, QueryResult
from .db.topk import RankedAnswer

__version__ = "1.10.0"

__all__ = [
    "ABSOLUTE",
    "RELATIVE",
    "ApproximationResult",
    "Atom",
    "BatchComputation",
    "BoundsSnapshot",
    "Circuit",
    "CircuitCache",
    "CircuitKernel",
    "CircuitSampler",
    "CircuitStoreError",
    "Clause",
    "CompiledResult",
    "ConfidenceEngine",
    "DNF",
    "DTree",
    "EngineConfig",
    "EngineResult",
    "InfluenceReport",
    "KernelUnavailableError",
    "ProbDB",
    "QueryResult",
    "RankedAnswer",
    "STRATEGY_LADDER",
    "ShardedBatchComputation",
    "SweepResult",
    "VariableRegistry",
    "WorkerPool",
    "approximate_probability",
    "brute_force_probability",
    "compile_circuit",
    "compile_dnf",
    "exact_probability",
    "exact_probability_compiled",
    "independent_bounds",
    "kernel_backend",
    "make_variable_selector",
    "rank_influence",
    "read_once_probability",
    "__version__",
]
