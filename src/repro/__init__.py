"""repro — approximate confidence computation in probabilistic databases.

A faithful, self-contained reproduction of

    Dan Olteanu, Jiewen Huang, Christoph Koch.
    "Approximate Confidence Computation in Probabilistic Databases."
    ICDE 2010.

The library provides:

* :mod:`repro.core` — DNFs over discrete random variables (interned to
  dense integer ids for hardware-speed set algebra), d-tree compilation,
  the Fig. 3 bounds heuristic, and the incremental ε-approximation
  algorithm with leaf closing (the paper's contribution);
* :mod:`repro.engine` — the :class:`ConfidenceEngine` planner: one
  ``compute()`` entry point that auto-selects read-once → SPROUT →
  d-tree ε-approximation → Monte-Carlo per query/lineage, with budgets
  and a shared decomposition memo cache;
* :mod:`repro.mc` — the Karp–Luby / Dagum–Karp–Luby–Ross ``aconf``
  baseline used by MystiQ and MayBMS;
* :mod:`repro.db` — a probabilistic database substrate: tuple-independent,
  block-independent-disjoint and c-tables, positive relational algebra with
  lineage, conjunctive queries, and a SPROUT-style exact operator for
  hierarchical queries;
* :mod:`repro.datasets` — the paper's workloads: probabilistic TPC-H,
  random graphs, and social networks with the motif queries.

Quickstart
----------
>>> from repro import VariableRegistry, DNF, approximate_probability
>>> reg = VariableRegistry.from_boolean_probabilities(
...     {"x": 0.3, "y": 0.2, "z": 0.7, "v": 0.8})
>>> phi = DNF.from_positive_clauses([["x", "y"], ["x", "z"], ["v"]])
>>> result = approximate_probability(phi, reg, epsilon=0.01)
>>> abs(result.estimate - 0.8456) <= 0.01
True
"""

from .core import (
    ABSOLUTE,
    RELATIVE,
    ApproximationResult,
    Atom,
    Clause,
    DNF,
    DTree,
    VariableRegistry,
    approximate_probability,
    brute_force_probability,
    compile_dnf,
    exact_probability,
    exact_probability_compiled,
    independent_bounds,
    make_variable_selector,
    read_once_probability,
)
from .engine import ConfidenceEngine, EngineResult, STRATEGY_LADDER

__version__ = "1.1.0"

__all__ = [
    "ABSOLUTE",
    "RELATIVE",
    "ApproximationResult",
    "Atom",
    "Clause",
    "DNF",
    "DTree",
    "VariableRegistry",
    "approximate_probability",
    "brute_force_probability",
    "compile_dnf",
    "ConfidenceEngine",
    "EngineResult",
    "STRATEGY_LADDER",
    "exact_probability",
    "exact_probability_compiled",
    "independent_bounds",
    "make_variable_selector",
    "read_once_probability",
    "__version__",
]
