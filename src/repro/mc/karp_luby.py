"""The Karp–Luby–Madras unbiased estimator for DNF probability.

Given a DNF ``Φ = c₁ ∨ … ∨ c_m`` over independent discrete random
variables, the estimator draws a clause ``cᵢ`` with probability
``P(cᵢ)/T`` where ``T = Σ P(cⱼ)``, then samples a world ``ω`` from the
conditional distribution given ``cᵢ``.

Two classical variants are provided (paper, Sections II and VII):

* **zero-one** (the original KLM coverage estimator): the sample value is
  ``T`` when ``cᵢ`` is the canonical (lowest-index) clause satisfied by
  ``ω``, else ``0``;
* **fractional** (the Vazirani-book variant the paper's ``aconf`` uses):
  the sample value is ``T / N(ω)`` where ``N(ω)`` is the number of clauses
  satisfied by ``ω``.  Both are unbiased for ``P(Φ)``; the fractional
  variant has smaller variance.

The estimator exposes samples normalised to ``[0, 1]`` (divided by ``T``)
so it can drive the Dagum–Karp–Luby–Ross stopping rules in
:mod:`repro.mc.dklr` directly.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.dnf import DNF
from ..core.variables import VariableRegistry

__all__ = ["KarpLubyEstimator", "ZERO_ONE", "FRACTIONAL"]

ZERO_ONE = "zero-one"
FRACTIONAL = "fractional"


class KarpLubyEstimator:
    """Sampler producing unbiased estimates of ``P(Φ)``.

    Parameters
    ----------
    dnf:
        The input DNF; must be satisfiable (non-empty).
    registry:
        The probability space.
    variant:
        ``"fractional"`` (default, lower variance) or ``"zero-one"``.
    rng:
        A :class:`random.Random`; supply a seeded instance for
        reproducibility.

    Notes
    -----
    All structures are pre-compiled to integer indices so that one sample
    costs ``O(|vars(Φ)| + size(Φ))``: draw the clause by binary search on
    cumulative clause probabilities, fix its atoms, sample every other
    variable of ``Φ``, and count satisfied clauses.
    """

    def __init__(
        self,
        dnf: DNF,
        registry: VariableRegistry,
        *,
        variant: str = FRACTIONAL,
        rng: Optional[random.Random] = None,
    ) -> None:
        if dnf.is_false():
            raise ValueError("Karp-Luby needs a non-empty DNF")
        if variant not in (ZERO_ONE, FRACTIONAL):
            raise ValueError(f"unknown variant {variant!r}")
        self.variant = variant
        self._rng = rng if rng is not None else random.Random()
        self._registry = registry

        # Deterministic variable indexing.
        self._variables: List[Hashable] = sorted(dnf.variables, key=repr)
        var_index: Dict[Hashable, int] = {
            variable: index for index, variable in enumerate(self._variables)
        }
        # Per-variable cumulative distributions for inverse-CDF sampling.
        self._domains: List[List[Hashable]] = []
        self._cumulative: List[List[float]] = []
        for variable in self._variables:
            dist = registry.distribution(variable)
            values = list(dist)
            cums: List[float] = []
            total = 0.0
            for value in values:
                total += dist[value]
                cums.append(total)
            cums[-1] = 1.0  # guard against floating drift
            self._domains.append(values)
            self._cumulative.append(cums)

        # Clauses in deterministic order, as (var_index, value) pairs.
        self._clauses: List[List[Tuple[int, Hashable]]] = []
        clause_probs: List[float] = []
        for clause in dnf.sorted_clauses():
            compiled = [
                (var_index[variable], value)
                for variable, value in clause.items()
            ]
            self._clauses.append(compiled)
            clause_probs.append(clause.probability(registry))

        self._clause_probs = clause_probs
        self._total_weight = sum(clause_probs)  # T = Σ P(cᵢ)
        cumulative = []
        running = 0.0
        for prob in clause_probs:
            running += prob
            cumulative.append(running)
        self._clause_cumulative = cumulative

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        """``T = Σ P(cᵢ)`` — the estimator's scale factor."""
        return self._total_weight

    @property
    def clause_count(self) -> int:
        return len(self._clauses)

    # ------------------------------------------------------------------
    def _sample_clause_index(self) -> int:
        target = self._rng.random() * self._total_weight
        cumulative = self._clause_cumulative
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low

    def _sample_world_given_clause(self, clause_index: int) -> List[Hashable]:
        """World over vars(Φ) drawn from ``P(· | c_i)``."""
        world: List[Hashable] = [None] * len(self._variables)
        fixed = [False] * len(self._variables)
        for var_idx, value in self._clauses[clause_index]:
            world[var_idx] = value
            fixed[var_idx] = True
        rng_random = self._rng.random
        for var_idx in range(len(self._variables)):
            if fixed[var_idx]:
                continue
            target = rng_random()
            cums = self._cumulative[var_idx]
            values = self._domains[var_idx]
            low, high = 0, len(cums) - 1
            while low < high:
                mid = (low + high) // 2
                if cums[mid] < target:
                    low = mid + 1
                else:
                    high = mid
            world[var_idx] = values[low]
        return world

    def _satisfied_count_and_first(
        self, world: Sequence[Hashable]
    ) -> Tuple[int, int]:
        """``(N(ω), index of first satisfied clause)``."""
        count = 0
        first = -1
        for index, clause in enumerate(self._clauses):
            satisfied = True
            for var_idx, value in clause:
                if world[var_idx] != value:
                    satisfied = False
                    break
            if satisfied:
                count += 1
                if first < 0:
                    first = index
        return count, first

    # ------------------------------------------------------------------
    def sample(self) -> float:
        """One unbiased sample of ``P(Φ)`` (value in ``[0, T]``)."""
        clause_index = self._sample_clause_index()
        world = self._sample_world_given_clause(clause_index)
        satisfied, first = self._satisfied_count_and_first(world)
        # The conditioning clause is satisfied by construction.
        if self.variant == FRACTIONAL:
            return self._total_weight / satisfied
        return self._total_weight if first == clause_index else 0.0

    def sample_unit(self) -> float:
        """One sample normalised into ``[0, 1]`` (divide by ``T``).

        Its mean is ``P(Φ)/T``, the quantity the DKLR stopping rules
        estimate; multiply their output by :attr:`total_weight`.
        """
        clause_index = self._sample_clause_index()
        world = self._sample_world_given_clause(clause_index)
        satisfied, first = self._satisfied_count_and_first(world)
        if self.variant == FRACTIONAL:
            return 1.0 / satisfied
        return 1.0 if first == clause_index else 0.0

    def estimate(self, samples: int) -> float:
        """Plain Monte-Carlo average of ``samples`` draws."""
        if samples <= 0:
            raise ValueError("need at least one sample")
        return sum(self.sample() for _ in range(samples)) / samples

    def klm_sample_bound(self, epsilon: float, delta: float) -> int:
        """The classical KLM bound ``⌈3·m·ln(2/δ)/ε²⌉`` on the number of
        Monte-Carlo steps for an (ε, δ) relative approximation (paper,
        Section II)."""
        import math

        if not (0.0 < epsilon < 1.0) or not (0.0 < delta < 1.0):
            raise ValueError("epsilon and delta must be in (0, 1)")
        return math.ceil(
            3.0 * self.clause_count * math.log(2.0 / delta) / epsilon**2
        )
