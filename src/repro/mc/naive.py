"""Naive Monte-Carlo estimation of DNF probability.

Samples complete worlds over ``vars(Φ)`` and reports the fraction
satisfying ``Φ``.  With ``N ≥ ln(2/δ)/(2ε²)`` samples this is an additive
(ε, δ) approximation by Hoeffding's inequality — the paper notes that
"designing a Monte Carlo algorithm for efficient absolute approximation is
trivial" (Section VII.3); this module is that triviality, used as a sanity
baseline and in tests.

Its fatal weakness, which the Karp–Luby scheme repairs, is *relative*
error on small probabilities: when ``P(Φ) ≈ 0`` almost all worlds miss.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, List, Optional, Tuple

from ..core.dnf import DNF
from ..core.variables import VariableRegistry

__all__ = ["naive_monte_carlo", "hoeffding_sample_bound"]


def hoeffding_sample_bound(epsilon: float, delta: float) -> int:
    """Samples needed for an additive (ε, δ) guarantee."""
    if not (0.0 < epsilon < 1.0) or not (0.0 < delta < 1.0):
        raise ValueError("epsilon and delta must be in (0, 1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def naive_monte_carlo(
    dnf: DNF,
    registry: VariableRegistry,
    samples: int,
    *,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> float:
    """Fraction of sampled worlds satisfying ``Φ``."""
    if samples <= 0:
        raise ValueError("need at least one sample")
    if dnf.is_false():
        return 0.0
    if dnf.is_true():
        return 1.0
    if rng is None:
        rng = random.Random(seed)

    variables: List[Hashable] = sorted(dnf.variables, key=repr)
    # Pre-compile inverse-CDF tables and integer-indexed clauses.
    domains: List[List[Hashable]] = []
    cumulative: List[List[float]] = []
    index_of = {variable: i for i, variable in enumerate(variables)}
    for variable in variables:
        dist = registry.distribution(variable)
        values = list(dist)
        cums: List[float] = []
        running = 0.0
        for value in values:
            running += dist[value]
            cums.append(running)
        cums[-1] = 1.0
        domains.append(values)
        cumulative.append(cums)
    clauses: List[List[Tuple[int, Hashable]]] = [
        [(index_of[variable], value) for variable, value in clause.items()]
        for clause in dnf.sorted_clauses()
    ]

    hits = 0
    world: List[Hashable] = [None] * len(variables)
    for _ in range(samples):
        for var_idx in range(len(variables)):
            target = rng.random()
            cums = cumulative[var_idx]
            values = domains[var_idx]
            low, high = 0, len(cums) - 1
            while low < high:
                mid = (low + high) // 2
                if cums[mid] < target:
                    low = mid + 1
                else:
                    high = mid
            world[var_idx] = values[low]
        for clause in clauses:
            if all(world[var_idx] == value for var_idx, value in clause):
                hits += 1
                break
    return hits / samples
