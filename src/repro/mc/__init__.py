"""Monte-Carlo baselines (paper, Sections II and VII).

* :mod:`~repro.mc.karp_luby` — the Karp–Luby–Madras unbiased estimator in
  its zero-one and fractional variants;
* :mod:`~repro.mc.dklr` — the Dagum–Karp–Luby–Ross optimal sequential
  estimation algorithms (stopping rule and 𝒜𝒜);
* :mod:`~repro.mc.aconf` — their combination, the ``aconf()`` operator of
  MayBMS that the paper benchmarks against;
* :mod:`~repro.mc.naive` — naive world sampling (absolute error only).
"""

from .aconf import DEFAULT_DELTA, AconfResult, aconf
from .dklr import (
    LAMBDA,
    MonteCarloResult,
    approximation_algorithm_estimate,
    stopping_rule_estimate,
)
from .karp_luby import FRACTIONAL, ZERO_ONE, KarpLubyEstimator
from .naive import hoeffding_sample_bound, naive_monte_carlo

__all__ = [
    "DEFAULT_DELTA",
    "AconfResult",
    "aconf",
    "LAMBDA",
    "MonteCarloResult",
    "approximation_algorithm_estimate",
    "stopping_rule_estimate",
    "FRACTIONAL",
    "ZERO_ONE",
    "KarpLubyEstimator",
    "hoeffding_sample_bound",
    "naive_monte_carlo",
]
