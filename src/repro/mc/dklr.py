"""The Dagum–Karp–Luby–Ross optimal Monte-Carlo estimation algorithm.

[DKLR, SIAM J. Comput. 29(5), 2000] give an (ε, δ) *relative*
approximation scheme for the mean ``μ`` of any random variable distributed
in ``[0, 1]``, using a number of samples proportional to the optimum.  The
paper's ``aconf`` baseline drives the Karp–Luby estimator with exactly this
scheme: "the Dagum-Karp-Luby-Ross optimal algorithm … based on sequential
analysis … determines the number of invocations of the Karp-Luby estimator
needed to achieve the required bound by running the estimator a small
number of times to estimate its mean and variance" (Section VII.1).

Two entry points:

* :func:`stopping_rule_estimate` — the Stopping Rule Algorithm (SRA):
  sample until the running sum reaches ``Υ₁ = 1 + (1+ε)·Υ`` with
  ``Υ = 4·(e−2)·ln(2/δ)/ε²``; return ``Υ₁ / N``.

* :func:`approximation_algorithm_estimate` — the 𝒜𝒜 algorithm: a crude
  SRA pass, a variance-estimation pass, and a final pass whose length is
  matched to ``max(σ², ε·μ)``; optimal up to constants.

Both support a ``max_samples`` cap so benchmark runs stay bounded; hitting
the cap is reported in the result rather than raised, mirroring how the
paper reports aconf timeouts.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

__all__ = [
    "MonteCarloResult",
    "stopping_rule_estimate",
    "approximation_algorithm_estimate",
    "LAMBDA",
]

#: λ = e − 2, the constant of the DKLR bounds.
LAMBDA = math.e - 2.0


class MonteCarloResult:
    """Outcome of a DKLR run.

    Attributes
    ----------
    estimate:
        The estimate of the mean ``μ`` (scale back by the estimator's
        ``T`` when estimating a DNF probability).
    samples:
        Total number of estimator invocations consumed.
    capped:
        True when ``max_samples`` stopped the run early; the estimate is
        then the plain running average without the (ε, δ) guarantee.
    """

    __slots__ = ("estimate", "samples", "capped")

    def __init__(self, estimate: float, samples: int, capped: bool) -> None:
        self.estimate = estimate
        self.samples = samples
        self.capped = capped

    def __repr__(self) -> str:
        return (
            f"MonteCarloResult(estimate={self.estimate:.6g}, "
            f"samples={self.samples}, capped={self.capped})"
        )


def _upsilon(epsilon: float, delta: float) -> float:
    return 4.0 * LAMBDA * math.log(2.0 / delta) / (epsilon * epsilon)


def _validate(epsilon: float, delta: float) -> None:
    if not (0.0 < epsilon < 1.0):
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not (0.0 < delta < 1.0):
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def stopping_rule_estimate(
    sample: Callable[[], float],
    epsilon: float,
    delta: float,
    *,
    max_samples: Optional[int] = None,
) -> MonteCarloResult:
    """The DKLR Stopping Rule Algorithm.

    ``sample`` must return i.i.d. values in ``[0, 1]`` with (unknown) mean
    ``μ > 0``.  Returns an estimate ``μ̂`` with
    ``Pr[|μ̂ − μ| ≤ ε·μ] ≥ 1 − δ`` after an expected ``Θ(Υ/μ)`` samples.
    """
    _validate(epsilon, delta)
    upsilon1 = 1.0 + (1.0 + epsilon) * _upsilon(epsilon, delta)
    total = 0.0
    count = 0
    while total < upsilon1:
        if max_samples is not None and count >= max_samples:
            mean = total / count if count else 0.0
            return MonteCarloResult(mean, count, True)
        total += sample()
        count += 1
    return MonteCarloResult(upsilon1 / count, count, False)


def approximation_algorithm_estimate(
    sample: Callable[[], float],
    epsilon: float,
    delta: float,
    *,
    max_samples: Optional[int] = None,
) -> MonteCarloResult:
    """The DKLR 𝒜𝒜 (Approximation Algorithm): optimal sequential MC.

    Step 1 runs the stopping rule at a crude accuracy
    ``ε' = min(1/2, √ε)`` with confidence ``δ/3`` to obtain ``μ̂``.
    Step 2 estimates ``ρ = max(σ², ε·μ)`` from paired differences.
    Step 3 averages ``Θ(Υ₂·ρ̂/μ̂²)`` fresh samples for the final answer.
    Overall an (ε, δ) relative approximation of ``μ``.
    """
    _validate(epsilon, delta)
    used = 0

    def budget_left() -> Optional[int]:
        if max_samples is None:
            return None
        return max(0, max_samples - used)

    # ---- Step 1: crude stopping-rule estimate --------------------------
    eps1 = min(0.5, math.sqrt(epsilon))
    crude = stopping_rule_estimate(
        sample, eps1, delta / 3.0, max_samples=budget_left()
    )
    used += crude.samples
    mu_hat = crude.estimate
    if crude.capped or mu_hat <= 0.0:
        return MonteCarloResult(mu_hat, used, True)

    # ---- Step 2: variance estimation -----------------------------------
    upsilon = _upsilon(epsilon, delta / 3.0)
    upsilon2 = 2.0 * (1.0 + math.sqrt(epsilon)) * (
        1.0 + 2.0 * math.sqrt(epsilon)
    ) * (1.0 + math.log(1.5) / math.log(3.0 / delta)) * upsilon

    pairs = max(1, math.ceil(upsilon2 * epsilon / mu_hat))
    remaining = budget_left()
    if remaining is not None and 2 * pairs > remaining:
        # Not enough budget for the variance pass: fall back to the crude
        # estimate, flagged as capped.
        return MonteCarloResult(mu_hat, used, True)
    squared_halved = 0.0
    for _ in range(pairs):
        first = sample()
        second = sample()
        squared_halved += (first - second) ** 2 / 2.0
    used += 2 * pairs
    rho_hat = max(squared_halved / pairs, epsilon * mu_hat)

    # ---- Step 3: the sized final run ------------------------------------
    final_count = max(1, math.ceil(upsilon2 * rho_hat / (mu_hat * mu_hat)))
    remaining = budget_left()
    capped = False
    if remaining is not None and final_count > remaining:
        final_count = remaining
        capped = True
    if final_count == 0:
        return MonteCarloResult(mu_hat, used, True)
    total = 0.0
    for _ in range(final_count):
        total += sample()
    used += final_count
    return MonteCarloResult(total / final_count, used, capped)
