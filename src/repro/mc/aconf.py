"""``aconf`` — the paper's Monte-Carlo baseline (Section VII.1).

``aconf(ε, δ)`` computes an (ε, δ) *relative* approximation of a DNF
probability by driving the fractional Karp–Luby estimator (values
normalised to ``[0, 1]``) with the Dagum–Karp–Luby–Ross 𝒜𝒜 algorithm:

    "It is a combination of the Karp-Luby unbiased estimator for DNF
    counting in a modified version adapted for confidence computation in
    probabilistic databases and the Dagum-Karp-Luby-Ross optimal algorithm
    for Monte Carlo estimation. … We actually use the probabilistic
    variant … which computes fractional estimates that have smaller
    variance than the zero-one estimates of the classical Karp-Luby
    estimator."

The default ``δ = 0.0001`` matches the experimental setup of the paper.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from ..core.dnf import DNF
from ..core.variables import VariableRegistry
from .dklr import approximation_algorithm_estimate, stopping_rule_estimate
from .karp_luby import FRACTIONAL, KarpLubyEstimator

__all__ = ["AconfResult", "aconf", "DEFAULT_DELTA"]

DEFAULT_DELTA = 0.0001


class AconfResult:
    """Outcome of an :func:`aconf` run.

    Attributes
    ----------
    estimate:
        The probability estimate (already scaled back by ``T``).
    samples:
        Karp–Luby estimator invocations consumed.
    capped:
        True when the ``max_samples`` work cap cut the run short (the
        analogue of the paper's benchmark timeouts); the (ε, δ) guarantee
        then no longer holds.
    elapsed_seconds:
        Wall-clock duration.
    """

    __slots__ = ("estimate", "samples", "capped", "elapsed_seconds")

    def __init__(
        self,
        estimate: float,
        samples: int,
        capped: bool,
        elapsed_seconds: float,
    ) -> None:
        self.estimate = estimate
        self.samples = samples
        self.capped = capped
        self.elapsed_seconds = elapsed_seconds

    def __repr__(self) -> str:
        return (
            f"AconfResult(estimate={self.estimate:.6g}, "
            f"samples={self.samples}, capped={self.capped})"
        )


def aconf(
    dnf: DNF,
    registry: VariableRegistry,
    epsilon: float,
    delta: float = DEFAULT_DELTA,
    *,
    variant: str = FRACTIONAL,
    algorithm: str = "aa",
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    max_samples: Optional[int] = None,
) -> AconfResult:
    """(ε, δ)-approximate ``P(Φ)``: ``Pr[|p − p̂| ≥ ε·p] ≤ δ``.

    Parameters
    ----------
    variant:
        Karp–Luby estimator variant (``"fractional"`` default, as in the
        paper; ``"zero-one"`` for the classical estimator, used in the
        ablation benchmarks).
    algorithm:
        ``"aa"`` (DKLR approximation algorithm, default) or ``"sra"``
        (plain stopping rule).
    rng / seed:
        Randomness control; ``seed`` builds a fresh ``random.Random``.
    max_samples:
        Work cap standing in for the paper's wall-clock timeouts.
    """
    started = time.monotonic()
    if dnf.is_false():
        return AconfResult(0.0, 0, False, time.monotonic() - started)
    if dnf.is_true():
        return AconfResult(1.0, 0, False, time.monotonic() - started)
    if rng is None:
        rng = random.Random(seed)

    estimator = KarpLubyEstimator(dnf, registry, variant=variant, rng=rng)
    if algorithm == "aa":
        run = approximation_algorithm_estimate(
            estimator.sample_unit, epsilon, delta, max_samples=max_samples
        )
    elif algorithm == "sra":
        run = stopping_rule_estimate(
            estimator.sample_unit, epsilon, delta, max_samples=max_samples
        )
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    probability = min(1.0, run.estimate * estimator.total_weight)
    return AconfResult(
        probability, run.samples, run.capped, time.monotonic() - started
    )
