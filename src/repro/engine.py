"""Unified confidence-computation planner: the :class:`ConfidenceEngine`.

The paper evaluates four ways of computing a tuple's confidence — exact
d-tree compilation, the incremental ε-approximation (Section V), SPROUT's
query-aware extensional plans [Olteanu, Huang, Koch; ICDE 2009], and the
``aconf`` Monte-Carlo baseline — and Section VI maps out exactly when each
is the right tool.  The seed library exposed them as disconnected entry
points the caller had to pick by hand; this module is the planner that
picks for them.

Strategy-selection ladder
-------------------------
:meth:`ConfidenceEngine.compute` walks the ladder top to bottom and stops
at the first strategy that answers the request:

1. ``trivial`` — the DNF is constant false/true: answer immediately.
2. ``read-once`` — the lineage factors into one-occurrence form
   (Section VI.B): exact probability in linear time on the factored form.
   This captures hierarchical-query lineage (Prop. 6.3) without needing
   the query.
3. ``sprout`` — *query level only* (:meth:`compute_query`): hierarchical
   conjunctive queries without self-joins on tuple-independent tables are
   evaluated extensionally, never materialising lineage.
4. ``dtree`` — the incremental ε-approximation with certified bounds (the
   paper's main algorithm; exact when ``ε = 0``), under the engine's
   time/step budget and shared decomposition memo cache.
5. ``mc`` — when the d-tree run exhausts its budget without certifying
   the requested ε and a relative guarantee was asked for, fall back to
   the Karp–Luby/DKLR ``aconf`` estimator; its estimate is clipped into
   the (always sound) d-tree bounds.

Every result reports which rung answered and why, and
:func:`repro.db.explain.explain` surfaces the same decision for a query
before any computation runs.

The engine also owns a :class:`~repro.core.memo.DecompositionCache`
shared across all of its calls: repeated sub-DNFs — ubiquitous in top-k
interval refinement and multi-answer queries over shared tuples — fold
instantly instead of being recompiled.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Tuple, Union

from .core.approx import (
    ABSOLUTE,
    RELATIVE,
    ApproximationResult,
    approximate_probability,
)
from .core.dnf import DNF
from .core.formulas import Formula
from .core.memo import DecompositionCache
from .core.orders import VariableSelector
from .core.readonce import try_read_once
from .core.variables import VariableRegistry

__all__ = ["ConfidenceEngine", "EngineResult", "STRATEGY_LADDER"]

#: The ladder, in selection order (``sprout`` applies at query level).
STRATEGY_LADDER: Tuple[str, ...] = (
    "trivial",
    "read-once",
    "sprout",
    "dtree",
    "mc",
)


class EngineResult:
    """Outcome of one :meth:`ConfidenceEngine.compute` call.

    Attributes
    ----------
    probability:
        The confidence estimate (midpoint of the certified interval for
        d-tree runs, exact value for read-once/SPROUT, MC estimate for
        the fallback).
    lower, upper:
        Sound probability bounds (point bounds for exact strategies; the
        best d-tree bounds found for budgeted runs).
    strategy:
        The ladder rung that produced the answer.
    reason:
        One line explaining why that rung was chosen.
    converged:
        Whether the requested guarantee was met.
    epsilon, error_kind:
        The request this result answers.
    steps:
        Decomposition steps spent (0 for non-d-tree strategies).
    elapsed_seconds:
        Wall-clock duration of the call.
    details:
        Strategy-specific extras (e.g. the underlying
        :class:`~repro.core.approx.ApproximationResult`).
    """

    __slots__ = (
        "probability",
        "lower",
        "upper",
        "strategy",
        "reason",
        "converged",
        "epsilon",
        "error_kind",
        "steps",
        "elapsed_seconds",
        "details",
    )

    def __init__(
        self,
        probability: float,
        lower: float,
        upper: float,
        strategy: str,
        reason: str,
        converged: bool,
        epsilon: float,
        error_kind: str,
        steps: int = 0,
        elapsed_seconds: float = 0.0,
        details: Optional[Dict] = None,
    ) -> None:
        self.probability = probability
        self.lower = lower
        self.upper = upper
        self.strategy = strategy
        self.reason = reason
        self.converged = converged
        self.epsilon = epsilon
        self.error_kind = error_kind
        self.steps = steps
        self.elapsed_seconds = elapsed_seconds
        self.details = details or {}

    # ``estimate`` mirrors ApproximationResult for drop-in compatibility.
    @property
    def estimate(self) -> float:
        return self.probability

    def width(self) -> float:
        """Bound interval width ``U − L``."""
        return self.upper - self.lower

    def __repr__(self) -> str:
        return (
            f"EngineResult({self.probability:.6g} via {self.strategy}, "
            f"bounds=[{self.lower:.6g}, {self.upper:.6g}], "
            f"converged={self.converged})"
        )


class ConfidenceEngine:
    """One entry point for every confidence computation.

    Parameters
    ----------
    registry:
        The probability space lineage is evaluated against.
    epsilon, error_kind:
        Default approximation request (``ε = 0`` asks for exact).
    choose_variable:
        Shannon pivot selector (e.g. ``answer_selector(database)`` for
        the Lemma 6.8 IQ order); max-frequency when omitted.
    deadline_seconds, max_steps:
        Per-``compute`` work budget for the d-tree rung.
    mc_fallback:
        Enable the ``aconf`` rung for budget-exhausted relative-error
        requests (on by default).
    mc_max_samples:
        Sample cap for the MC rung — its only work bound; ``aconf`` has
        no wall-clock deadline, so a ``compute`` call that falls through
        to MC can exceed ``deadline_seconds`` by the sampling time (the
        rung is skipped entirely when the deadline is already spent).
    try_read_once:
        Attempt the linear-time 1OF rung first (on by default; turning
        it off forces the d-tree path, for ablations).
    cache:
        Shared :class:`DecompositionCache`; a fresh one is created when
        omitted and reused for the engine's lifetime.
    """

    def __init__(
        self,
        registry: VariableRegistry,
        *,
        epsilon: float = 0.0,
        error_kind: str = ABSOLUTE,
        choose_variable: Optional[VariableSelector] = None,
        deadline_seconds: Optional[float] = None,
        max_steps: Optional[int] = None,
        mc_fallback: bool = True,
        mc_max_samples: int = 100_000,
        try_read_once: bool = True,
        cache: Optional[DecompositionCache] = None,
    ) -> None:
        if not (0.0 <= epsilon < 1.0):
            raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
        if error_kind not in (ABSOLUTE, RELATIVE):
            raise ValueError(f"unknown error kind {error_kind!r}")
        self.registry = registry
        self.epsilon = epsilon
        self.error_kind = error_kind
        self.choose_variable = choose_variable
        self.deadline_seconds = deadline_seconds
        self.max_steps = max_steps
        self.mc_fallback = mc_fallback
        self.mc_max_samples = mc_max_samples
        self.try_read_once = try_read_once
        self.cache = cache if cache is not None else DecompositionCache()
        # DNF -> factored form (or None): top-k refinement re-submits the
        # same lineage with growing budgets; don't re-attempt 1OF each time.
        self._readonce_memo: Dict[DNF, object] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_database(cls, database, **kwargs) -> "ConfidenceEngine":
        """An engine wired with a database's registry and IQ provenance."""
        from .db.engine import answer_selector

        kwargs.setdefault("choose_variable", answer_selector(database))
        return cls(database.registry, **kwargs)

    # ------------------------------------------------------------------
    # DNF-level computation
    # ------------------------------------------------------------------
    def compute(
        self,
        lineage: Union[DNF, Formula],
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> EngineResult:
        """Confidence of a lineage formula via the strategy ladder.

        Accepts a :class:`DNF` or any lineage :class:`Formula` (converted
        via ``to_dnf``).  Per-call overrides fall back to the engine
        defaults.
        """
        started = time.monotonic()
        if isinstance(lineage, Formula):
            dnf = lineage.to_dnf()
        else:
            dnf = lineage
        epsilon = self.epsilon if epsilon is None else epsilon
        error_kind = self.error_kind if error_kind is None else error_kind
        # Validate overrides up front: the trivial/read-once rungs return
        # before the d-tree rung would have rejected them.
        if not (0.0 <= epsilon < 1.0):
            raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
        if error_kind not in (ABSOLUTE, RELATIVE):
            raise ValueError(f"unknown error kind {error_kind!r}")
        max_steps = self.max_steps if max_steps is None else max_steps
        deadline_seconds = (
            self.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )

        def finish(result: EngineResult) -> EngineResult:
            result.elapsed_seconds = time.monotonic() - started
            return result

        # Rung 1: constants.
        if dnf.is_false():
            return finish(
                EngineResult(
                    0.0, 0.0, 0.0, "trivial", "empty DNF is constant false",
                    True, epsilon, error_kind,
                )
            )
        if dnf.is_true():
            return finish(
                EngineResult(
                    1.0, 1.0, 1.0, "trivial",
                    "DNF contains the empty clause (constant true)",
                    True, epsilon, error_kind,
                )
            )

        # Rung 2: read-once factorization (linear-time exact).
        if self.try_read_once:
            if dnf in self._readonce_memo:
                formula = self._readonce_memo[dnf]
            else:
                formula = try_read_once(dnf)
                if len(self._readonce_memo) > 10_000:
                    self._readonce_memo.clear()
                self._readonce_memo[dnf] = formula
            if formula is not None:
                value = formula.probability(self.registry)
                return finish(
                    EngineResult(
                        value, value, value, "read-once",
                        "lineage factors into one-occurrence form "
                        "(Section VI.B): exact in linear time",
                        True, epsilon, error_kind,
                    )
                )

        # Rung 4: incremental d-tree ε-approximation.
        outcome = approximate_probability(
            dnf,
            self.registry,
            epsilon=epsilon,
            error_kind=error_kind,
            choose_variable=self.choose_variable,
            max_steps=max_steps,
            deadline_seconds=deadline_seconds,
            cache=self.cache,
        )
        if outcome.converged or not self._mc_applicable(epsilon, error_kind):
            reason = (
                "incremental d-tree approximation certified the request"
                if outcome.converged
                else "d-tree budget exhausted; bounds are best-effort "
                "(no MC fallback applicable)"
            )
            return finish(self._from_dtree(outcome, reason))

        # Rung 5: Monte-Carlo fallback on budget exhaustion.  The MC rung
        # is bounded by ``mc_max_samples`` (aconf has no wall-clock cap);
        # it is skipped when the caller's deadline is already spent.
        remaining = (
            None
            if deadline_seconds is None
            else deadline_seconds - (time.monotonic() - started)
        )
        mc_result = self._run_mc(dnf, epsilon, remaining)
        if mc_result is None:
            return finish(
                self._from_dtree(
                    outcome,
                    "d-tree budget exhausted; MC fallback unavailable",
                )
            )
        estimate, samples, capped = mc_result
        # The d-tree bounds stay sound; clip the MC estimate into them.
        estimate = min(max(estimate, outcome.lower), outcome.upper)
        return finish(
            EngineResult(
                estimate,
                outcome.lower,
                outcome.upper,
                "mc",
                "d-tree budget exhausted; Karp–Luby/DKLR aconf estimate "
                "within the partial d-tree bounds",
                not capped,
                epsilon,
                error_kind,
                steps=outcome.steps,
                details={"dtree": outcome, "mc_samples": samples,
                         "mc_capped": capped},
            )
        )

    def _mc_applicable(self, epsilon: float, error_kind: str) -> bool:
        # aconf gives (ε, δ) *relative* guarantees; ε = 0 cannot be met
        # by sampling and an absolute request would be mislabelled as
        # converged.
        return (
            self.mc_fallback and epsilon > 0.0 and error_kind == RELATIVE
        )

    def _run_mc(
        self,
        dnf: DNF,
        epsilon: float,
        remaining_seconds: Optional[float],
    ) -> Optional[Tuple[float, int, bool]]:
        if remaining_seconds is not None and remaining_seconds <= 0.0:
            return None  # deadline already spent by the d-tree rung
        try:
            from .mc.aconf import aconf
        except ImportError:  # pragma: no cover - mc is part of the tree
            return None
        outcome = aconf(
            dnf,
            self.registry,
            epsilon=epsilon,
            max_samples=self.mc_max_samples,
        )
        return outcome.estimate, outcome.samples, outcome.capped

    def _from_dtree(
        self, outcome: ApproximationResult, reason: str
    ) -> EngineResult:
        return EngineResult(
            outcome.estimate,
            outcome.lower,
            outcome.upper,
            "dtree",
            reason,
            outcome.converged,
            outcome.epsilon,
            outcome.error_kind,
            steps=outcome.steps,
            details={"dtree": outcome},
        )

    # ------------------------------------------------------------------
    # Query-level computation
    # ------------------------------------------------------------------
    @classmethod
    def select_query_strategy(
        cls, query, database=None
    ) -> Tuple[str, str]:
        """The ladder rung a query will take, with the reason.

        Query-level selection happens *before* lineage is materialised:
        hierarchical self-join-free queries with at most local
        inequalities on tuple-independent tables go to SPROUT; everything
        else materialises lineage and re-enters the ladder per answer.
        Without a ``database`` the row-lineage condition is assumed to
        hold (SPROUT itself re-checks and the planner falls back).
        """
        if query.has_self_join():
            return (
                "dtree",
                "self-joins are outside every known tractable class",
            )
        if not query.is_hierarchical():
            return (
                "dtree",
                "query is not hierarchical (Def. 6.1); lineage enters "
                "the d-tree ladder per answer",
            )
        inequalities_local = all(
            any(
                set(inequality.variables()) <= set(subgoal.variables())
                for subgoal in query.subgoals
            )
            for inequality in query.inequalities
        )
        if not inequalities_local:
            return (
                "dtree",
                "cross-subgoal inequalities: IQ d-tree order applies, "
                "not SPROUT",
            )
        if database is not None and not cls._rows_tuple_independent(
            query, database
        ):
            return (
                "dtree",
                "composite row lineage: SPROUT needs tuple-independent "
                "(or certain) input rows",
            )
        return (
            "sprout",
            "hierarchical without self-joins on tuple-independent "
            "tables: exact extensional plan (Prop. 6.3)",
        )

    @staticmethod
    def _rows_tuple_independent(query, database) -> bool:
        return all(
            subgoal.relation in database
            and database[subgoal.relation].has_simple_lineage()
            for subgoal in query.subgoals
        )

    def compute_query(
        self,
        query,
        database,
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> List[Tuple[Tuple[Hashable, ...], EngineResult]]:
        """Per-answer confidence for a conjunctive query.

        Routes the whole query through SPROUT when its class allows,
        otherwise materialises lineage and walks the DNF ladder per
        answer.
        """
        strategy, reason = self.select_query_strategy(query, database)
        if strategy == "sprout":
            from .db.sprout import UnsafeQueryError, sprout_confidence

            try:
                eps = self.epsilon if epsilon is None else epsilon
                kind = (
                    self.error_kind if error_kind is None else error_kind
                )
                return [
                    (
                        values,
                        EngineResult(
                            probability, probability, probability,
                            "sprout", reason, True, eps, kind,
                        ),
                    )
                    for values, probability in sprout_confidence(
                        query, database
                    )
                ]
            except UnsafeQueryError:
                # The classifier is conservative but SPROUT's own checks
                # are authoritative; fall through to the lineage ladder.
                pass

        from .db.engine import evaluate_to_dnf

        return [
            (
                values,
                self.compute(
                    dnf,
                    epsilon=epsilon,
                    error_kind=error_kind,
                    max_steps=max_steps,
                    deadline_seconds=deadline_seconds,
                ),
            )
            for values, dnf in evaluate_to_dnf(query, database)
        ]
