"""Unified confidence-computation planner: the :class:`ConfidenceEngine`.

The paper evaluates four ways of computing a tuple's confidence — exact
d-tree compilation, the incremental ε-approximation (Section V), SPROUT's
query-aware extensional plans [Olteanu, Huang, Koch; ICDE 2009], and the
``aconf`` Monte-Carlo baseline — and Section VI maps out exactly when each
is the right tool.  The seed library exposed them as disconnected entry
points the caller had to pick by hand; this module is the planner that
picks for them.

Strategy-selection ladder
-------------------------
:meth:`ConfidenceEngine.compute` walks the ladder top to bottom and stops
at the first strategy that answers the request:

1. ``trivial`` — the DNF is constant false/true: answer immediately.
2. ``read-once`` — the lineage factors into one-occurrence form
   (Section VI.B): exact probability in linear time on the factored form.
   This captures hierarchical-query lineage (Prop. 6.3) without needing
   the query.
3. ``sprout`` — *query level only* (:meth:`compute_query`): hierarchical
   conjunctive queries without self-joins on tuple-independent tables are
   evaluated extensionally, never materialising lineage.
4. ``dtree`` — the incremental ε-approximation with certified bounds (the
   paper's main algorithm; exact when ``ε = 0``), under the engine's
   time/step budget and shared decomposition memo cache.
5. ``mc`` — when the d-tree run exhausts its budget without certifying
   the requested ε and a relative guarantee was asked for, fall back to
   the Karp–Luby/DKLR ``aconf`` estimator; its estimate is clipped into
   the (always sound) d-tree bounds.

Every result reports which rung answered and why, and
:func:`repro.db.explain.explain` surfaces the same decision for a query
before any computation runs.

Configuration is one frozen :class:`EngineConfig` value — the same
dataclass every public path (:class:`~repro.db.session.ProbDB`, the SQL
front-end, top-k, explain, the benchmark harness) accepts, replacing the
per-function kwarg plumbing of earlier revisions.

Batched computation
-------------------
:meth:`ConfidenceEngine.compute_many` answers a *set* of lineage formulas
as one prioritized anytime computation (the MystiQ view of multi-answer
queries): under a shared step/time budget it round-robins refinement
across tuples by certified interval width via :class:`BatchComputation`,
so the widest — most ambiguous — answer is always the one refined next,
and every tuple's refinement reuses the cache entries its siblings just
populated.  Top-k ranking (:func:`repro.db.topk.rank_answers`) and the
session façade's ``QueryResult.bounds()`` iterator are thin consumers of
the same machinery.

The engine also owns a :class:`~repro.core.memo.DecompositionCache`
shared across all of its calls: repeated sub-DNFs — ubiquitous in top-k
interval refinement and multi-answer queries over shared tuples — fold
instantly instead of being recompiled.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import threading
from concurrent.futures import BrokenExecutor
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine_parallel import ShardedBatchComputation, WorkerPool

from .circuits.circuit import Circuit
from .circuits.compiler import CircuitCompilationStats
from .circuits.compiler import compile_circuit as _compile_circuit
from .circuits.kernels import BACKEND_NUMPY, kernel_backend
from .core import clock
from .core.approx import (
    ABSOLUTE,
    RELATIVE,
    ApproximationResult,
    approximate_probability,
)
from .core.dnf import DNF
from .core.formulas import Formula
from .core.memo import DecompositionCache
from .core.orders import VariableSelector, max_frequency_choice
from .core.readonce import try_read_once
from .core.variables import VariableRegistry

__all__ = [
    "BatchComputation",
    "ConfidenceEngine",
    "EngineConfig",
    "EngineResult",
    "STRATEGY_LADDER",
    "circuit_hit_result",
]

#: The ladder, in selection order (``sprout`` applies at query level).
STRATEGY_LADDER: Tuple[str, ...] = (
    "trivial",
    "read-once",
    "sprout",
    "dtree",
    "mc",
)

Lineage = Union[DNF, Formula]


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """One frozen bundle of confidence-computation policy.

    Every public confidence path — :class:`ConfidenceEngine` itself, the
    :class:`~repro.db.session.ProbDB` façade, SQL ``conf()``, top-k, and
    the benchmark harness — honours the same config object; there are no
    other knobs.

    Attributes
    ----------
    epsilon, error_kind:
        Default approximation request (``ε = 0`` asks for exact;
        ``"absolute"`` or ``"relative"``, Definition 5.7).
    choose_variable:
        Shannon pivot selector (e.g. the Lemma 6.8 IQ order).  ``None``
        means *auto*: database-backed constructors wire the database's
        provenance order, bare registries fall back to max-frequency.
    deadline_seconds, max_steps:
        Per-call work budget for the d-tree rung.
    mc_fallback, mc_max_samples:
        Enable the ``aconf`` rung for budget-exhausted relative-error
        requests, and its only work bound (sampling has no wall-clock
        deadline of its own).
    try_read_once:
        Attempt the linear-time 1OF rung first (off forces the d-tree
        path, for ablations).
    allow_closing, sort_buckets, read_once_buckets:
        The Section V heuristic toggles, forwarded to
        :func:`~repro.core.approx.approximate_probability` (ablation
        knobs; the defaults match the paper's configuration).
    initial_steps, step_growth:
        Refinement schedule for batched anytime computation: each round
        the most ambiguous tuple's step budget is multiplied by
        ``step_growth``.
    max_total_steps:
        Shared step budget across a whole :meth:`ConfidenceEngine.compute_many`
        batch.  ``None`` (the default) means every tuple runs to its own
        guarantee; top-k defaults to 200 000 when unset.
    workers, executor_kind:
        Parallel execution policy for batched computation.  ``workers=1``
        (the default) keeps every path single-threaded; ``workers>1``
        shards :meth:`ConfidenceEngine.compute_many` /
        :meth:`ConfidenceEngine.refine_many` batches across a pool of
        ``"process"`` or ``"thread"`` workers, each with its own engine
        and decomposition cache (see :mod:`repro.engine_parallel`).
        Processes escape the GIL and are the right default for CPU-bound
        d-tree work; threads are cheaper to spin up and share one intern
        table, useful for small batches and differential testing.
    rng_seed:
        Seed for the Monte-Carlo fallback rung.  ``None`` keeps sampling
        nondeterministic; an integer makes every MC estimate a pure
        function of ``(rng_seed, lineage)`` — stable across runs, tuple
        order, and shard assignment.
    vectorized:
        Kernel backend policy for the numpy-vectorized paths (scenario
        sweeps, circuit Monte-Carlo sampling, batched leaf bounds).
        ``None`` (default) auto-selects: numpy when importable, the
        pure-Python scalar sweeps otherwise — results are bit-identical
        either way.  ``False`` forces scalar (the differential-testing
        knob); ``True`` demands numpy and raises
        :class:`~repro.circuits.KernelUnavailableError` at construction
        when it is missing (install the ``repro[fast]`` extra).
    compile_circuits:
        Record the d-tree trace of every answer as an arithmetic
        circuit (:mod:`repro.circuits`) on ``EngineResult.circuit``:
        exact rungs compile fully, budgeted ε-runs compile *partial*
        circuits with residual-interval leaves.  Circuits make repeat
        evaluation under changed tuple probabilities an O(|circuit|)
        sweep and power sensitivity / what-if analysis; the session
        layer additionally caches them so warm queries skip the
        engine.  Batched refinement skips per-round compilation
        (intermediate results are replaced); the batch compiles its
        *final* answers once — a cheap cache replay on the serial
        path, and under ``workers > 1`` a final round on the warm
        workers, which compile in parallel and ship the circuits (and
        their decomposition-cache cones) back to the coordinator over
        the :mod:`repro.circuits.serialize` codec, so the coordinator
        never re-decomposes.  Off by default: compilation costs
        roughly one extra decomposition replay per answer.
    """

    epsilon: float = 0.0
    error_kind: str = ABSOLUTE
    choose_variable: Optional[VariableSelector] = None
    deadline_seconds: Optional[float] = None
    max_steps: Optional[int] = None
    mc_fallback: bool = True
    mc_max_samples: int = 100_000
    try_read_once: bool = True
    allow_closing: bool = True
    sort_buckets: bool = True
    read_once_buckets: bool = False
    initial_steps: int = 4
    step_growth: int = 2
    max_total_steps: Optional[int] = None
    workers: int = 1
    executor_kind: str = "process"
    rng_seed: Optional[int] = None
    compile_circuits: bool = False
    vectorized: Optional[bool] = None

    def __post_init__(self) -> None:
        # Resolving the backend validates the preference: forcing
        # vectorized=True without numpy raises KernelUnavailableError
        # here, at config construction, instead of deep in a sweep.
        kernel_backend(self.vectorized)
        if not (0.0 <= self.epsilon < 1.0):
            raise ValueError(
                f"epsilon must be in [0, 1), got {self.epsilon}"
            )
        if self.error_kind not in (ABSOLUTE, RELATIVE):
            raise ValueError(f"unknown error kind {self.error_kind!r}")
        if self.initial_steps < 1:
            raise ValueError(
                f"initial_steps must be >= 1, got {self.initial_steps}"
            )
        if self.step_growth < 2:
            raise ValueError(
                f"step_growth must be >= 2, got {self.step_growth}"
            )
        if self.mc_max_samples < 1:
            raise ValueError(
                f"mc_max_samples must be >= 1, got {self.mc_max_samples}"
            )
        for name in ("max_steps", "max_total_steps"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.executor_kind not in ("process", "thread"):
            raise ValueError(
                "executor_kind must be 'process' or 'thread', got "
                f"{self.executor_kind!r}"
            )

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot, for benchmark result rows.

        The pivot selector is rendered by name (``"auto"`` when unset):
        callables don't serialise, but the name pins down which order a
        recorded run used.
        """
        description = dataclasses.asdict(self)
        selector = self.choose_variable
        if selector is None:
            description["choose_variable"] = "auto"
        else:
            description["choose_variable"] = (
                getattr(selector, "__qualname__", None)
                or getattr(selector, "__name__", None)
                or repr(selector)
            )
        # The *resolved* backend ("numpy"/"scalar"), so a recorded run
        # pins down which kernel actually executed — the `vectorized`
        # field only records the preference.
        description["kernel_backend"] = kernel_backend(self.vectorized)
        return description


def _atom_fingerprint(variable: Hashable, value: Hashable) -> bytes:
    """Run-stable bytes identifying one atomic event.

    Pickle first (deterministic for the common name types — strings,
    ints, tuples — and free of memory addresses even for plain objects,
    unlike default ``repr``); fall back to ``repr`` for unpicklable
    names, which at least covers anything with a custom stable repr.
    ``hash()`` is never used: string hashing varies with
    ``PYTHONHASHSEED``.
    """
    try:
        return pickle.dumps((variable, value), protocol=4)
    except Exception:
        return repr((variable, value)).encode("utf-8", "backslashreplace")


def _lineage_seed(base: int, dnf: DNF) -> int:
    """A per-lineage MC seed stable across runs and processes.

    Derived by hashing the *canonical structure* of the DNF — sorted
    atom fingerprints per clause, clauses sorted — through blake2b,
    never interned ids (which depend on interning order within a run).
    """
    clauses = sorted(
        b"\x00".join(
            sorted(
                _atom_fingerprint(variable, value)
                for variable, value in clause.items()
            )
        )
        for clause in dnf
    )
    digest = hashlib.blake2b(
        b"\x01".join(clauses), digest_size=8
    ).digest()
    return (base ^ int.from_bytes(digest, "big")) & 0x7FFFFFFFFFFFFFFF


#: Human-readable fragment per MC sampler tag, spliced into the
#: EngineResult reason string by both MC call sites.
_MC_SAMPLER_REASONS = {
    "karp-luby": "Karp–Luby/DKLR aconf estimate",
    "circuit": "vectorized circuit-sampling DKLR estimate",
}


class EngineResult:
    """Outcome of one :meth:`ConfidenceEngine.compute` call.

    Attributes
    ----------
    probability:
        The confidence estimate (midpoint of the certified interval for
        d-tree runs, exact value for read-once/SPROUT, MC estimate for
        the fallback).
    lower, upper:
        Sound probability bounds (point bounds for exact strategies; the
        best d-tree bounds found for budgeted runs).
    strategy:
        The ladder rung that produced the answer.
    reason:
        One line explaining why that rung was chosen.
    converged:
        Whether the requested guarantee was met.
    epsilon, error_kind:
        The request this result answers.
    steps:
        Decomposition steps spent (0 for non-d-tree strategies).
    elapsed_seconds:
        Wall-clock duration of the call.
    details:
        Strategy-specific extras (e.g. the underlying
        :class:`~repro.core.approx.ApproximationResult`).
    circuit:
        The compiled :class:`~repro.circuits.Circuit` of this lineage
        when ``EngineConfig.compile_circuits`` is on (``None``
        otherwise, and on sharded workers): exact for exact rungs,
        partial — residual-interval leaves, sound bounds — for
        budgeted ε-runs.
    """

    __slots__ = (
        "probability",
        "lower",
        "upper",
        "strategy",
        "reason",
        "converged",
        "epsilon",
        "error_kind",
        "steps",
        "elapsed_seconds",
        "details",
        "circuit",
    )

    def __init__(
        self,
        probability: float,
        lower: float,
        upper: float,
        strategy: str,
        reason: str,
        converged: bool,
        epsilon: float,
        error_kind: str,
        steps: int = 0,
        elapsed_seconds: float = 0.0,
        details: Optional[Dict[str, object]] = None,
        circuit: Optional[Circuit] = None,
    ) -> None:
        self.probability = probability
        self.lower = lower
        self.upper = upper
        self.strategy = strategy
        self.reason = reason
        self.converged = converged
        self.epsilon = epsilon
        self.error_kind = error_kind
        self.steps = steps
        self.elapsed_seconds = elapsed_seconds
        self.details = details or {}
        self.circuit = circuit

    # ``estimate`` mirrors ApproximationResult for drop-in compatibility.
    @property
    def estimate(self) -> float:
        return self.probability

    def width(self) -> float:
        """Bound interval width ``U − L``."""
        return self.upper - self.lower

    def __repr__(self) -> str:
        return (
            f"EngineResult({self.probability:.6g} via {self.strategy}, "
            f"bounds=[{self.lower:.6g}, {self.upper:.6g}], "
            f"converged={self.converged})"
        )


def circuit_hit_result(
    circuit: "Circuit",
    config: "EngineConfig",
    epsilon: Optional[float] = None,
    error_kind: Optional[str] = None,
) -> "EngineResult":
    """A cached-circuit answer as an :class:`EngineResult`.

    One definition for every warm path that skips the engine — the
    session cache hits (``QueryResult.confidences`` and
    ``ProbDB.confidence``) and the serving tier's store hits — so the
    strategy-"circuit" result shape cannot drift between them.
    """
    value = circuit.evaluate()
    return EngineResult(
        value, value, value, "circuit",
        "session circuit cache hit: O(|circuit|) re-evaluation, "
        "engine skipped",
        True,
        config.epsilon if epsilon is None else epsilon,
        config.error_kind if error_kind is None else error_kind,
        circuit=circuit,
    )


def _wants_exact_circuit(result: "EngineResult") -> bool:
    """Should this result's circuit be compiled exactly (no budget)?

    Exact answers — the trivial/read-once rungs, and an ``ε = 0``
    converged d-tree run — compile fully; everything else gets a
    node-budgeted partial compile.  One definition shared by the serial
    attach path (:meth:`ConfidenceEngine._attach_circuit`) and the
    sharded shipping path
    (:meth:`~repro.engine_parallel.ShardedBatchComputation.compile_final_circuits`),
    so the two cannot disagree on what a worker should compile.
    """
    return result.strategy in ("trivial", "read-once") or (
        result.strategy == "dtree"
        and result.converged
        and result.epsilon == 0.0
    )


def _merge_refined(
    previous: "EngineResult", result: "EngineResult"
) -> "EngineResult":
    """Monotone merge of a re-run into the previous certified interval.

    Certified intervals never regress: a re-run cut short (e.g. by an
    expired deadline) may report wider bounds than the previous round
    already proved; keep the intersection, which is sound because both
    intervals contain the true probability.  Shared by the serial
    (:meth:`BatchComputation.refine`) and sharded
    (:mod:`repro.engine_parallel`) refinement paths — the bit-identity
    contract between them depends on this being one piece of code.
    """
    if previous.lower > result.lower:
        result.lower = previous.lower
    if previous.upper < result.upper:
        result.upper = previous.upper
    if result.probability < result.lower:
        result.probability = result.lower
    elif result.probability > result.upper:
        result.probability = result.upper
    return result


def _interval_converged(
    low: float, high: float, epsilon: float, error_kind: str
) -> bool:
    """Does ``[low, high]`` certify the request?  Mirrors the d-tree
    run's Prop. 5.8 criterion (one definition, so the circuit-refine
    path cannot disagree with the ε-approximation on convergence)."""
    if error_kind == ABSOLUTE:
        return high - low <= 2.0 * epsilon
    return (1.0 - epsilon) * high <= (1.0 + epsilon) * low


def _interval_estimate(
    low: float, high: float, epsilon: float, error_kind: str,
    converged: bool,
) -> float:
    """The reported estimate for certified bounds (mirrors the d-tree
    run's ``make_result``: midpoint of the qualifying interval)."""
    if not converged:
        return (low + high) / 2.0
    if error_kind == ABSOLUTE:
        estimate = ((high - epsilon) + (low + epsilon)) / 2.0
    else:
        estimate = ((1.0 - epsilon) * high + (1.0 + epsilon) * low) / 2.0
    return max(low, min(high, estimate))


def resumable_circuit(
    engine: "ConfidenceEngine",
    dnf: DNF,
    *candidates: Optional[Circuit],
) -> Optional[Circuit]:
    """The first candidate partial circuit refinement can resume.

    Checks the explicit ``candidates`` first (a batch's own expansion
    progress), then the engine's :attr:`~ConfidenceEngine.circuit_source`
    (the session cache).  A circuit qualifies when it is partial, its
    residual leaves carry their sub-DNFs (``Circuit.refinable`` — true
    for compile-time circuits and format-v2 store reloads, false for
    pre-v2 stores), it lives on this engine's registry, and it is
    unconditioned (the cache keys plain lineage; a conditioned circuit
    answers a different distribution).
    """
    pool = list(candidates)
    source = engine.circuit_source
    if source is not None:
        pool.append(source(dnf))
    for circuit in pool:
        if (
            circuit is not None
            and not circuit.is_exact
            and circuit.refinable
            and circuit.registry is engine.registry
            and not circuit.conditioned
        ):
            return circuit
    return None


def _circuit_refine_result(
    engine: "ConfidenceEngine",
    dnf: DNF,
    circuit: Circuit,
    previous: "EngineResult",
    budget: int,
    epsilon: float,
    error_kind: str,
) -> "EngineResult":
    """One strategy-"circuit-refine" round: expand the widest residual.

    Instead of re-running the ε-approximation from scratch with a
    bigger budget, the cached partial circuit is tightened *in place*:
    the widest refinable residual leaf's sub-DNF is compiled (replaying
    the engine's decomposition cache where it is warm — resuming a
    just-computed batch costs zero cold steps) and spliced in via
    :func:`repro.circuits.expand_residuals`.  The expanded circuit is
    written back through :attr:`ConfidenceEngine.circuit_sink` so
    progress survives the batch (and, with a persisted session store,
    the process).
    """
    from .circuits.compiler import expand_residuals

    slot = circuit.widest_residual()
    if slot is None:  # pragma: no cover - guarded by resumable_circuit
        return _merge_refined(previous, previous)
    sub_dnf = circuit.residual_dnf(slot)
    assert isinstance(sub_dnf, DNF)
    stats = CircuitCompilationStats()
    replacement = engine.compile_circuit(
        sub_dnf,
        max_nodes=engine._circuit_node_budget(budget, sub_dnf),
        stats=stats,
    )
    expanded = expand_residuals(circuit, {slot: replacement})
    low, high = expanded.evaluate_bounds()
    converged = _interval_converged(low, high, epsilon, error_kind)
    result = EngineResult(
        _interval_estimate(low, high, epsilon, error_kind, converged),
        low,
        high,
        "circuit-refine",
        "resumed the cached partial circuit: widest residual leaf "
        "expanded in place instead of re-running the ε-approximation",
        converged,
        epsilon,
        error_kind,
        steps=previous.steps + stats.cold_steps,
        details={
            "residual_slot": slot,
            "residuals_left": len(expanded.residuals),
            "cold_steps": stats.cold_steps,
        },
        circuit=expanded,
    )
    sink = engine.circuit_sink
    if sink is not None:
        sink(dnf, expanded)
    return _merge_refined(previous, result)


class BatchComputation:
    """Anytime round-robin refinement of many lineages on one engine.

    This generalizes the interval-refinement loop that used to be private
    to :mod:`repro.db.topk`: every tuple holds a certified probability
    interval and a per-tuple step budget; :meth:`step` refines the widest
    unconverged interval by re-running it with a ``step_growth``-times
    larger budget.  Because all refinement goes through one engine and
    its :class:`~repro.core.memo.DecompositionCache`, a re-run resumes
    almost where the previous round stopped, and tuples with shared
    lineage fold each other's finished subtrees in one step.

    Consumers drive the loop with their own stopping rule: ε-convergence
    (:meth:`ConfidenceEngine.compute_many`), ranking separation
    (:func:`repro.db.topk.rank_answers`), or the caller's patience
    (``QueryResult.bounds()``).
    """

    __slots__ = (
        "engine",
        "epsilon",
        "error_kind",
        "step_growth",
        "max_steps",
        "deadline_seconds",
        "dnfs",
        "budgets",
        "results",
        "total_steps",
        "_started",
    )

    def __init__(
        self,
        engine: "ConfidenceEngine",
        lineages: Iterable[Lineage],
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        initial_steps: Optional[int] = None,
        step_growth: Optional[int] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        config = engine.config
        self.engine = engine
        self.epsilon = config.epsilon if epsilon is None else epsilon
        self.error_kind = (
            config.error_kind if error_kind is None else error_kind
        )
        if initial_steps is None:
            initial_steps = config.initial_steps
        self.step_growth = (
            config.step_growth if step_growth is None else step_growth
        )
        self.max_steps = max_steps
        self.deadline_seconds = (
            config.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )
        self._started = clock.monotonic()
        self.dnfs: List[DNF] = [
            lineage.to_dnf() if isinstance(lineage, Formula) else lineage
            for lineage in lineages
        ]
        self.budgets: List[int] = [
            self._capped(initial_steps) for _ in self.dnfs
        ]
        self.total_steps = 0
        self.results: List[EngineResult] = []
        for index in range(len(self.dnfs)):
            result = self._compute(index)
            self.results.append(result)
            self.total_steps += result.steps

    def _capped(self, budget: int) -> int:
        if self.max_steps is not None:
            return min(budget, self.max_steps)
        return budget

    def remaining_seconds(self) -> Optional[float]:
        """Time left on the whole-batch deadline (``None`` = unbounded)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (clock.monotonic() - self._started)

    def out_of_time(self) -> bool:
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0.0

    def _compute(self, index: int) -> EngineResult:
        # MC fallback is deferred to the very end of a batch (see
        # ConfidenceEngine._finalize_batch): sampling inside the
        # refinement loop would be paid on every round.  Circuit
        # compilation likewise: a refinement round's result is replaced
        # next round, so its circuit would be thrown away — consumers
        # that want circuits compile once, from the final results.
        return self.engine.compute(
            self.dnfs[index],
            epsilon=self.epsilon,
            error_kind=self.error_kind,
            max_steps=self.budgets[index],
            deadline_seconds=self.remaining_seconds(),
            mc_fallback=False,
            compile_circuits=False,
        )

    def converged(self) -> bool:
        """Has every tuple certified the requested guarantee?"""
        return all(result.converged for result in self.results)

    def refinable(
        self, indices: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Indices that can still make progress (unconverged, budget
        headroom left)."""
        if indices is None:
            indices = range(len(self.dnfs))
        return [
            index
            for index in indices
            if not self.results[index].converged
            and (
                self.max_steps is None
                or self.budgets[index] < self.max_steps
            )
        ]

    def widest(self, indices: Optional[Sequence[int]] = None) -> Optional[int]:
        """The refinable tuple with the widest certified interval."""
        candidates = self.refinable(indices)
        if not candidates:
            return None
        return max(candidates, key=lambda index: self.results[index].width())

    def refine(self, index: int) -> EngineResult:
        """Grow ``index``'s budget and tighten it (cache-resumed).

        When a budgeted run left a refinable partial circuit behind —
        this batch's own expansion progress, or the session cache via
        :attr:`ConfidenceEngine.circuit_source` (including circuits
        reloaded from a persisted store in a fresh process) — the round
        expands the widest residual leaf in place (strategy
        ``"circuit-refine"``) instead of re-running the ε-approximation
        from scratch.  Otherwise it recomputes with a
        ``step_growth``-times larger budget, as before.

        ``total_steps`` tracks the *latest* run's step count per tuple —
        the shared cache makes a re-run resume rather than repeat, so
        summing across rounds would double-count folded subtrees.
        """
        self.budgets[index] = self._capped(
            self.budgets[index] * self.step_growth
        )
        previous = self.results[index]
        circuit = resumable_circuit(
            self.engine, self.dnfs[index], previous.circuit
        )
        result: Optional[EngineResult] = None
        if circuit is not None:
            result = _circuit_refine_result(
                self.engine,
                self.dnfs[index],
                circuit,
                previous,
                self.budgets[index],
                self.epsilon,
                self.error_kind,
            )
            if (
                not result.converged
                and result.steps == previous.steps
                and result.width() >= previous.width()
            ):
                # The expansion stalled (node budget too tight to make
                # progress on this leaf): fall back to the classic
                # re-run so the driver loop always advances.
                result = None
        if result is None:
            result = _merge_refined(previous, self._compute(index))
        self.results[index] = result
        self.total_steps += result.steps - previous.steps
        return result

    def step(self, indices: Optional[Sequence[int]] = None) -> Optional[int]:
        """Refine the widest refinable tuple; its index, or ``None``."""
        index = self.widest(indices)
        if index is None:
            return None
        self.refine(index)
        return index

    def __len__(self) -> int:
        return len(self.dnfs)


class ConfidenceEngine:
    """One entry point for every confidence computation.

    Parameters
    ----------
    registry:
        The probability space lineage is evaluated against.
    config:
        The :class:`EngineConfig` policy bundle; defaults apply when
        omitted.
    cache:
        Shared :class:`DecompositionCache`; a fresh one is created when
        omitted and reused for the engine's lifetime.
    **overrides:
        Individual :class:`EngineConfig` fields, applied on top of
        ``config`` (``ConfidenceEngine(reg, epsilon=0.01)`` is shorthand
        for ``ConfidenceEngine(reg, EngineConfig(epsilon=0.01))``).
    """

    def __init__(
        self,
        registry: VariableRegistry,
        config: Optional[EngineConfig] = None,
        *,
        cache: Optional[DecompositionCache] = None,
        **overrides: object,
    ) -> None:
        if config is None:
            config = EngineConfig()
        if overrides:
            config = config.replace(**overrides)
        self.registry = registry
        self.config = config
        self.cache = cache if cache is not None else DecompositionCache()
        # DNF -> factored form (or None): top-k refinement re-submits the
        # same lineage with growing budgets; don't re-attempt 1OF each time.
        self._readonce_memo: Dict[DNF, Optional[Formula]] = {}
        # Engine-lifetime worker pools, amortized across sharded
        # batches; one slot per executor kind so interleaved thread-
        # and process-pool batches don't evict each other.  Empty
        # until the first parallel batch.  _pool_starts counts
        # (re)builds — the amortization measure tests and benchmarks
        # observe.  The lock guards the registry dict; each pool's own
        # round_lock serializes execution rounds.
        self._worker_pools: Dict[str, "WorkerPool"] = {}
        self._pool_lock = threading.Lock()
        self._pool_starts = 0
        #: Optional ``DNF -> Circuit`` lookup the session layer wires to
        #: its circuit cache: when the MC rung finds an *exact* cached
        #: circuit here (and the numpy backend is on), it samples
        #: Bernoulli worlds on the circuit in vectorized blocks instead
        #: of running per-sample Karp-Luby over the raw lineage.
        self.circuit_source: Optional[
            Callable[[DNF], Optional[Circuit]]
        ] = None
        #: Optional ``(DNF, Circuit) -> None`` write-back the session
        #: layer wires to its circuit cache: the circuit-refine path
        #: stores each expanded partial circuit here, so anytime
        #: progress survives the batch — and, when the session persists
        #: its store, the process.
        self.circuit_sink: Optional[
            Callable[[DNF, Circuit], None]
        ] = None

    # -- EngineConfig field mirrors (pre-config API compatibility) -------
    @property
    def epsilon(self) -> float:
        return self.config.epsilon

    @property
    def error_kind(self) -> str:
        return self.config.error_kind

    @property
    def choose_variable(self) -> Optional[VariableSelector]:
        return self.config.choose_variable

    @property
    def deadline_seconds(self) -> Optional[float]:
        return self.config.deadline_seconds

    @property
    def max_steps(self) -> Optional[int]:
        return self.config.max_steps

    @property
    def mc_fallback(self) -> bool:
        return self.config.mc_fallback

    @property
    def mc_max_samples(self) -> int:
        return self.config.mc_max_samples

    @property
    def try_read_once(self) -> bool:
        return self.config.try_read_once

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_database(
        cls,
        database,
        config: Optional[EngineConfig] = None,
        *,
        cache: Optional[DecompositionCache] = None,
        **overrides: object,
    ) -> "ConfidenceEngine":
        """An engine wired with a database's registry and IQ provenance."""
        from .db.engine import answer_selector

        if config is None:
            config = EngineConfig()
        if overrides:
            config = config.replace(**overrides)
        if config.choose_variable is None:
            config = config.replace(
                choose_variable=answer_selector(database)
            )
        return cls(database.registry, config, cache=cache)

    # ------------------------------------------------------------------
    # DNF-level computation
    # ------------------------------------------------------------------
    def compute(
        self,
        lineage: Lineage,
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        mc_fallback: Optional[bool] = None,
        compile_circuits: Optional[bool] = None,
    ) -> EngineResult:
        """Confidence of a lineage formula via the strategy ladder.

        Accepts a :class:`DNF` or any lineage :class:`Formula` (converted
        via ``to_dnf``).  Per-call overrides fall back to the engine's
        :class:`EngineConfig`.  ``compile_circuits=False`` suppresses
        circuit attachment for this call even when the config enables it
        (batched refinement uses this: intermediate rounds' circuits
        would be thrown away, so the batch compiles once at the end).
        """
        started = clock.monotonic()
        config = self.config
        if isinstance(lineage, Formula):
            dnf = lineage.to_dnf()
        else:
            dnf = lineage
        epsilon = config.epsilon if epsilon is None else epsilon
        error_kind = config.error_kind if error_kind is None else error_kind
        # Validate overrides up front: the trivial/read-once rungs return
        # before the d-tree rung would have rejected them.
        if not (0.0 <= epsilon < 1.0):
            raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
        if error_kind not in (ABSOLUTE, RELATIVE):
            raise ValueError(f"unknown error kind {error_kind!r}")
        max_steps = config.max_steps if max_steps is None else max_steps
        deadline_seconds = (
            config.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )
        mc_enabled = (
            config.mc_fallback if mc_fallback is None else mc_fallback
        )
        # Mirrors the mc_fallback override: an explicit True compiles
        # even when the config default is off.
        circuits_enabled = (
            config.compile_circuits
            if compile_circuits is None
            else compile_circuits
        )

        def finish(result: EngineResult) -> EngineResult:
            result.elapsed_seconds = clock.monotonic() - started
            return result

        def attach(result: EngineResult) -> EngineResult:
            if not circuits_enabled:
                return result
            return self._attach_circuit(result, dnf)

        # Rung 1: constants.
        if dnf.is_false():
            return finish(
                attach(
                    EngineResult(
                        0.0, 0.0, 0.0, "trivial",
                        "empty DNF is constant false",
                        True, epsilon, error_kind,
                    )
                )
            )
        if dnf.is_true():
            return finish(
                attach(
                    EngineResult(
                        1.0, 1.0, 1.0, "trivial",
                        "DNF contains the empty clause (constant true)",
                        True, epsilon, error_kind,
                    )
                )
            )

        # Rung 2: read-once factorization (linear-time exact).
        if config.try_read_once:
            if dnf in self._readonce_memo:
                formula = self._readonce_memo[dnf]
            else:
                formula = try_read_once(dnf)
                if len(self._readonce_memo) > 10_000:
                    self._readonce_memo.clear()
                self._readonce_memo[dnf] = formula
            if formula is not None:
                value = formula.probability(self.registry)
                return finish(
                    attach(
                        EngineResult(
                            value, value, value, "read-once",
                            "lineage factors into one-occurrence form "
                            "(Section VI.B): exact in linear time",
                            True, epsilon, error_kind,
                        )
                    )
                )

        # Rung 4: incremental d-tree ε-approximation.
        outcome = approximate_probability(
            dnf,
            self.registry,
            epsilon=epsilon,
            error_kind=error_kind,
            choose_variable=config.choose_variable,
            allow_closing=config.allow_closing,
            sort_buckets=config.sort_buckets,
            read_once_buckets=config.read_once_buckets,
            max_steps=max_steps,
            deadline_seconds=deadline_seconds,
            cache=self.cache,
            vectorized=config.vectorized,
        )
        if outcome.converged or not self._mc_applicable(
            epsilon, error_kind, mc_enabled
        ):
            reason = (
                "incremental d-tree approximation certified the request"
                if outcome.converged
                else "d-tree budget exhausted; bounds are best-effort "
                "(no MC fallback applicable)"
            )
            return finish(attach(self._from_dtree(outcome, reason)))

        # Rung 5: Monte-Carlo fallback on budget exhaustion.  The MC rung
        # is bounded by ``mc_max_samples`` (aconf has no wall-clock cap);
        # it is skipped when the caller's deadline is already spent.
        remaining = (
            None
            if deadline_seconds is None
            else deadline_seconds - (clock.monotonic() - started)
        )
        mc_result = self._run_mc(dnf, epsilon, remaining)
        if mc_result is None:
            return finish(
                attach(
                    self._from_dtree(
                        outcome,
                        "d-tree budget exhausted; MC fallback unavailable",
                    )
                )
            )
        estimate, samples, capped, sampler = mc_result
        # The d-tree bounds stay sound; clip the MC estimate into them.
        estimate = min(max(estimate, outcome.lower), outcome.upper)
        return finish(
            attach(
                EngineResult(
                    estimate,
                    outcome.lower,
                    outcome.upper,
                    "mc",
                    "d-tree budget exhausted; "
                    + _MC_SAMPLER_REASONS[sampler]
                    + " within the partial d-tree bounds",
                    not capped,
                    epsilon,
                    error_kind,
                    steps=outcome.steps,
                    details={"dtree": outcome, "mc_samples": samples,
                             "mc_capped": capped,
                             "mc_sampler": sampler},
                )
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def retire_worker_pools(self) -> None:
        """Shut down the engine-lifetime worker pools (idempotent).

        The engine stays usable: a later sharded batch simply builds a
        fresh pool.  Pools are never shut down mid-round — a round in
        flight on another thread finishes first (its batch then heals
        onto a fresh pool on its next round).  Besides engine
        retirement, the mutation subsystem calls this when tuple
        probabilities change: worker decomposition caches carry numeric
        results keyed only by intern version, which does not move on a
        probability update, so stale pools must not survive a mutation.
        """
        with self._pool_lock:
            pools = list(self._worker_pools.values())
            self._worker_pools.clear()
        for pool in pools:
            # Same discipline as displacement in acquire_worker_pool:
            # wait out any in-flight round before closing.
            with pool.round_lock:
                pool.close()

    def close(self) -> None:
        """Retire the worker pools when the engine itself retires.

        Sharded batches (``workers > 1``) acquire a pool that lives on
        the engine so repeated batches reuse warm workers; call this
        when retiring the engine, or rely on the GC finalizer backstop.
        Engines are also context managers::

            with ConfidenceEngine(registry, workers=4) as engine:
                engine.compute_many(batch)
        """
        self.retire_worker_pools()

    def __enter__(self) -> "ConfidenceEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Circuit compilation
    # ------------------------------------------------------------------
    def compile_circuit(
        self,
        lineage: Lineage,
        *,
        max_nodes: Optional[int] = None,
        stats: Optional[CircuitCompilationStats] = None,
    ) -> Circuit:
        """Compile lineage into a reusable arithmetic circuit.

        Uses the engine's configured pivot selector and heuristic flags
        and — crucially — its shared
        :class:`~repro.core.memo.DecompositionCache`, so compiling
        right after a confidence run replays the recorded decomposition
        trace instead of re-searching it.  ``max_nodes`` caps the
        circuit; unexpanded sub-DNFs become residual-interval leaves
        (see :mod:`repro.circuits`).
        """
        config = self.config
        if isinstance(lineage, Formula):
            dnf = lineage.to_dnf()
        else:
            dnf = lineage
        return _compile_circuit(
            dnf,
            self.registry,
            choose_variable=config.choose_variable,
            cache=self.cache,
            max_nodes=max_nodes,
            sort_buckets=config.sort_buckets,
            read_once_buckets=config.read_once_buckets,
            stats=stats,
            vectorized=config.vectorized,
        )

    def bind_cache(self) -> DecompositionCache:
        """The engine's cache, bound to the engine's own configuration.

        The exact bind the decomposition/compile paths perform —
        identity-compared ``(registry, selector, heuristic flags)`` —
        so entries merged into the cache afterwards (worker cache
        slices shipped by the sharded execution layer) survive the next
        engine call instead of being cleared by a config rebind.
        """
        config = self.config
        selector = config.choose_variable or max_frequency_choice
        self.cache.bind(
            DecompositionCache.bind_config(
                self.registry,
                selector,
                config.sort_buckets,
                config.read_once_buckets,
            )
        )
        return self.cache

    @staticmethod
    def _circuit_node_budget(steps: int, dnf: DNF) -> int:
        """Node budget for the partial circuit of a budgeted run.

        Proportional to the decomposition work the run actually spent
        (each step built at most one inner node plus its children) with
        a floor covering the input's own atoms, so compilation never
        dominates a truncated computation.
        """
        return 64 + 8 * steps + 2 * dnf.size()

    def _attach_circuit(
        self, result: EngineResult, dnf: DNF
    ) -> EngineResult:
        """Compile ``dnf``'s circuit onto ``result`` (knob checked by
        callers).

        Exact answers — the trivial/read-once rungs, and an ``ε = 0``
        converged d-tree run — compile fully; budgeted answers get a
        node budget proportional to the work the run actually spent,
        with residual-interval leaves standing in for unexpanded
        sub-DNFs.
        """
        exact = _wants_exact_circuit(result)
        max_nodes = (
            None
            if exact
            else self._circuit_node_budget(result.steps, dnf)
        )
        result.circuit = self.compile_circuit(dnf, max_nodes=max_nodes)
        return result

    # ------------------------------------------------------------------
    # Batched computation
    # ------------------------------------------------------------------
    def refine_many(
        self,
        lineages: Iterable[Lineage],
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        initial_steps: Optional[int] = None,
        step_growth: Optional[int] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        workers: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ) -> "Union[BatchComputation, ShardedBatchComputation]":
        """An anytime :class:`BatchComputation` over ``lineages``.

        The caller drives refinement (``step()``/``refine()``) under its
        own stopping rule; :meth:`compute_many` is the run-to-guarantee
        driver, top-k and ``QueryResult.bounds()`` are the other two.

        With ``workers > 1`` (argument or engine config) the returned
        batch is a :class:`~repro.engine_parallel.ShardedBatchComputation`
        — the same interface, refinement fanned out across a worker pool.
        """
        lineages = list(lineages)
        if workers is None:
            workers = self.config.workers
        if workers > 1 and len(lineages) > 1:
            from .engine_parallel import ShardedBatchComputation

            return ShardedBatchComputation(
                self,
                lineages,
                workers=workers,
                executor_kind=executor_kind,
                epsilon=epsilon,
                error_kind=error_kind,
                initial_steps=initial_steps,
                step_growth=step_growth,
                max_steps=max_steps,
                deadline_seconds=deadline_seconds,
            )
        return BatchComputation(
            self,
            lineages,
            epsilon=epsilon,
            error_kind=error_kind,
            initial_steps=initial_steps,
            step_growth=step_growth,
            max_steps=max_steps,
            deadline_seconds=deadline_seconds,
        )

    def compute_many(
        self,
        lineages: Iterable[Lineage],
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        initial_steps: Optional[int] = None,
        step_growth: Optional[int] = None,
        max_total_steps: Optional[int] = None,
        workers: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ) -> List[EngineResult]:
        """Confidences for a batch of lineages on one shared cache.

        Under a shared budget (``max_total_steps``, from the argument or
        the engine config) the batch is one prioritized anytime
        computation: refinement round-robins across tuples by certified
        interval width, so budget flows to the most ambiguous answers
        first, and on exhaustion every tuple still carries sound bounds
        (with the MC rung estimating inside them where applicable).

        Without a shared budget there is nothing to arbitrate and each
        tuple simply runs to its own guarantee — but still back to back
        on the engine's shared :class:`DecompositionCache`, so answers
        with overlapping lineage fold each other's subtrees instead of
        recompiling them (the cache-sharing win over N cold calls).

        ``deadline_seconds`` bounds the *whole batch*, unlike
        :meth:`compute`'s per-call deadline.

        With ``workers > 1`` (argument or engine config) the batch is
        sharded across a worker pool (:mod:`repro.engine_parallel`): each
        worker runs its shard on its own engine and cache, refinement
        rebalances the widest intervals across shards between rounds,
        and the merged results are exactly as sound as the serial path's
        (bit-identical for exact strategies).
        """
        config = self.config
        lineages = list(lineages)
        if not lineages:
            return []
        if max_total_steps is None:
            max_total_steps = config.max_total_steps
        deadline = (
            config.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )
        if workers is None:
            workers = config.workers
        if workers > 1 and len(lineages) > 1:
            from .engine_parallel import ShardedBatchComputation

            batch = ShardedBatchComputation(
                self,
                lineages,
                workers=workers,
                executor_kind=executor_kind,
                epsilon=epsilon,
                error_kind=error_kind,
                initial_steps=initial_steps,
                step_growth=step_growth,
                max_steps=max_steps,
                deadline_seconds=deadline,
                run_to_guarantee=max_total_steps is None,
            )
            try:
                batch.run(max_total_steps=max_total_steps)
                self._finalize_batch(batch)
                if self.config.compile_circuits:
                    # One final round on the (warm) workers: each
                    # compiles its answers' circuits and ships them —
                    # plus its decomposition-cache cone — back over
                    # the serialization codec.  The coordinator never
                    # re-decomposes; _attach_batch_circuits below is
                    # only the fallback for unshippable entries.
                    try:
                        batch.compile_final_circuits()
                    except BrokenExecutor:
                        # The confidences are already complete; a pool
                        # dying during this *optional* round must not
                        # discard them.  The corpse was evicted inside
                        # compile_final_circuits; the coordinator
                        # compiles the missing circuits itself below.
                        # Only BrokenExecutor is absorbed — any other
                        # error (a worker-side compile bug, a missing
                        # initializer) must surface, not silently
                        # degrade every batch to serial compilation.
                        pass
                self._attach_batch_circuits(batch)
                return list(batch.results)
            finally:
                batch.close()
        if max_total_steps is None:
            started = clock.monotonic()
            results = []
            for lineage in lineages:
                remaining = (
                    None
                    if deadline is None
                    else max(deadline - (clock.monotonic() - started), 0.0)
                )
                results.append(
                    self.compute(
                        lineage,
                        epsilon=epsilon,
                        error_kind=error_kind,
                        max_steps=max_steps,
                        deadline_seconds=remaining,
                    )
                )
            return results

        batch = self.refine_many(
            lineages,
            epsilon=epsilon,
            error_kind=error_kind,
            initial_steps=initial_steps,
            step_growth=step_growth,
            max_steps=max_steps,
            deadline_seconds=deadline,
        )
        while (
            not batch.converged()
            and batch.total_steps < max_total_steps
            and not batch.out_of_time()
        ):
            if batch.step() is None:
                break
        self._finalize_batch(batch)
        self._attach_batch_circuits(batch)
        return list(batch.results)

    def _attach_batch_circuits(self, batch) -> None:
        """Compile circuits for a finished batch's final answers.

        Refinement rounds skip compilation — their results are
        replaced round over round — so the batch compiles once, here.
        On the serial path this replays the decompositions the run
        just cached (cheap).  On the sharded path the workers already
        compiled and shipped the final circuits
        (:meth:`~repro.engine_parallel.ShardedBatchComputation.compile_final_circuits`),
        so this loop only covers entries the shipping round could not
        serialize (e.g. unpicklable variable names on a thread pool).
        """
        if not self.config.compile_circuits:
            return
        for index, result in enumerate(batch.results):
            if result.circuit is None:
                batch.results[index] = self._attach_circuit(
                    result, batch.dnfs[index]
                )

    def _finalize_batch(self, batch) -> None:
        """Apply the MC rung to tuples whose batch budget ran out.

        ``batch`` is a :class:`BatchComputation` or any object with its
        interface (the sharded batches of :mod:`repro.engine_parallel`
        qualify); MC always runs here, on the coordinating engine, so a
        seeded run is deterministic regardless of shard assignment.
        """
        if not self._mc_applicable(
            batch.epsilon, batch.error_kind, self.config.mc_fallback
        ):
            return
        for index, result in enumerate(batch.results):
            if result.converged:
                continue
            mc_result = self._run_mc(
                batch.dnfs[index], batch.epsilon, batch.remaining_seconds()
            )
            if mc_result is None:
                continue
            estimate, samples, capped, sampler = mc_result
            estimate = min(max(estimate, result.lower), result.upper)
            batch.results[index] = EngineResult(
                estimate,
                result.lower,
                result.upper,
                "mc",
                "batch budget exhausted; "
                + _MC_SAMPLER_REASONS[sampler]
                + " within the partial d-tree bounds",
                not capped,
                batch.epsilon,
                batch.error_kind,
                steps=result.steps,
                details=dict(
                    result.details, mc_samples=samples, mc_capped=capped,
                    mc_sampler=sampler,
                ),
                circuit=result.circuit,
            )

    def _mc_applicable(
        self, epsilon: float, error_kind: str, enabled: bool
    ) -> bool:
        # aconf gives (ε, δ) *relative* guarantees; ε = 0 cannot be met
        # by sampling and an absolute request would be mislabelled as
        # converged.
        return enabled and epsilon > 0.0 and error_kind == RELATIVE

    def _mc_circuit(self, dnf: DNF) -> Optional[Circuit]:
        """An exact cached circuit to sample MC worlds on, if usable.

        Requires a wired :attr:`circuit_source` (the session layer), the
        numpy backend (circuit sampling is only a win vectorized), an
        *exact* circuit (residual leaves are bounds, not events), and
        the engine's own registry (a cache shared across probability
        spaces must not leak another space's probabilities).
        """
        source = self.circuit_source
        if source is None:
            return None
        if kernel_backend(self.config.vectorized) != BACKEND_NUMPY:
            return None
        circuit = source(dnf)
        if circuit is None or not circuit.is_exact:
            return None
        if circuit.registry is not self.registry:
            return None
        return circuit

    def _run_mc(
        self,
        dnf: DNF,
        epsilon: float,
        remaining_seconds: Optional[float],
    ) -> Optional[Tuple[float, int, bool, str]]:
        if remaining_seconds is not None and remaining_seconds <= 0.0:
            return None  # deadline already spent by the d-tree rung
        try:
            from .mc.aconf import DEFAULT_DELTA, aconf
        except ImportError:  # pragma: no cover - mc is part of the tree
            return None
        seed = self.config.rng_seed
        if seed is not None:
            # Derive a per-lineage seed so the estimate is a pure
            # function of (rng_seed, lineage): identical across runs,
            # tuple orderings, and shard assignments.
            seed = _lineage_seed(seed, dnf)
        circuit = self._mc_circuit(dnf)
        if circuit is not None:
            # Same (ε, δ) DKLR driver and work cap as the scalar rung —
            # identical interval semantics — but each sample is one row
            # of a vectorized circuit-world block.
            from .circuits.kernels import circuit_monte_carlo

            run = circuit_monte_carlo(
                circuit,
                epsilon=epsilon,
                delta=DEFAULT_DELTA,
                seed=seed,
                max_samples=self.config.mc_max_samples,
            )
            return run.estimate, run.samples, run.capped, "circuit"
        outcome = aconf(
            dnf,
            self.registry,
            epsilon=epsilon,
            seed=seed,
            max_samples=self.config.mc_max_samples,
        )
        return (
            outcome.estimate,
            outcome.samples,
            outcome.capped,
            "karp-luby",
        )

    def _from_dtree(
        self, outcome: ApproximationResult, reason: str
    ) -> EngineResult:
        return EngineResult(
            outcome.estimate,
            outcome.lower,
            outcome.upper,
            "dtree",
            reason,
            outcome.converged,
            outcome.epsilon,
            outcome.error_kind,
            steps=outcome.steps,
            details={"dtree": outcome},
        )

    # ------------------------------------------------------------------
    # Query-level computation
    # ------------------------------------------------------------------
    @classmethod
    def select_query_strategy(
        cls, query, database=None
    ) -> Tuple[str, str]:
        """The ladder rung a query will take, with the reason.

        Query-level selection happens *before* lineage is materialised:
        hierarchical self-join-free queries with at most local
        inequalities on tuple-independent tables go to SPROUT; everything
        else materialises lineage and re-enters the ladder per answer.
        Without a ``database`` the row-lineage condition is assumed to
        hold (SPROUT itself re-checks and the planner falls back).
        """
        if query.has_self_join():
            return (
                "dtree",
                "self-joins are outside every known tractable class",
            )
        if not query.is_hierarchical():
            return (
                "dtree",
                "query is not hierarchical (Def. 6.1); lineage enters "
                "the d-tree ladder per answer",
            )
        inequalities_local = all(
            any(
                set(inequality.variables()) <= set(subgoal.variables())
                for subgoal in query.subgoals
            )
            for inequality in query.inequalities
        )
        if not inequalities_local:
            return (
                "dtree",
                "cross-subgoal inequalities: IQ d-tree order applies, "
                "not SPROUT",
            )
        if database is not None and not cls._rows_tuple_independent(
            query, database
        ):
            return (
                "dtree",
                "composite row lineage: SPROUT needs tuple-independent "
                "(or certain) input rows",
            )
        return (
            "sprout",
            "hierarchical without self-joins on tuple-independent "
            "tables: exact extensional plan (Prop. 6.3)",
        )

    @staticmethod
    def _rows_tuple_independent(query, database) -> bool:
        return all(
            subgoal.relation in database
            and database[subgoal.relation].has_simple_lineage()
            for subgoal in query.subgoals
        )

    def compute_query(
        self,
        query,
        database,
        *,
        answers: Optional[
            Sequence[Tuple[Tuple[Hashable, ...], DNF]]
        ] = None,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        max_total_steps: Optional[int] = None,
        workers: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ) -> List[Tuple[Tuple[Hashable, ...], EngineResult]]:
        """Per-answer confidence for a conjunctive query.

        Routes the whole query through SPROUT when its class allows,
        otherwise materialises lineage (or reuses precomputed
        ``answers``) and walks the DNF ladder as one
        :meth:`compute_many` batch.
        """
        strategy, reason = self.select_query_strategy(query, database)
        if strategy == "sprout":
            from .db.sprout import UnsafeQueryError, sprout_confidence

            try:
                eps = self.config.epsilon if epsilon is None else epsilon
                kind = (
                    self.config.error_kind
                    if error_kind is None
                    else error_kind
                )
                return [
                    (
                        values,
                        EngineResult(
                            probability, probability, probability,
                            "sprout", reason, True, eps, kind,
                        ),
                    )
                    for values, probability in sprout_confidence(
                        query, database
                    )
                ]
            except UnsafeQueryError:
                # The classifier is conservative but SPROUT's own checks
                # are authoritative; fall through to the lineage ladder.
                pass

        if answers is None:
            from .db.engine import evaluate_to_dnf

            answers = evaluate_to_dnf(query, database)
        results = self.compute_many(
            [dnf for _values, dnf in answers],
            epsilon=epsilon,
            error_kind=error_kind,
            max_steps=max_steps,
            deadline_seconds=deadline_seconds,
            max_total_steps=max_total_steps,
            workers=workers,
            executor_kind=executor_kind,
        )
        return [
            (values, result)
            for (values, _dnf), result in zip(answers, results)
        ]
