"""Circuit-serving tier: async evaluation over persisted circuit stores.

The query-time half of the compile-once/evaluate-many story.  One
process (or many) compiles lineage into arithmetic circuits and saves
them with :meth:`CircuitCache.save`; a serving process loads those
stores through a :class:`CircuitStoreService` (immutable snapshots,
stat-based hot reload), and a :class:`ServingEngine` answers
``evaluate`` / ``bounds`` / ``gradients`` / ``what_if`` / ``sweep`` /
``top_k`` requests against them — micro-batching concurrent
same-circuit work into single kernel sweeps, bounding concurrency per
tenant, enforcing deadlines through :mod:`repro.core.clock`, and
degrading gracefully (cold lineage → attached engine; overload →
shed with a structured ``overloaded`` error).

Front-ends: :class:`ServingApp` (stdlib ASGI 3, JSON wire codec in
:mod:`repro.serving.codec`), :func:`serve` (uvicorn, optional extra),
and the in-process :class:`ServingClient` / :class:`ASGIClient`.
:class:`ServingStats` reports latency percentiles, batch occupancy,
store and response-cache hit/miss traffic, shed counts, and quota
rejections.

Fleet scale-out: :class:`ServingFleet` runs one serving worker process
per shard over the same persisted store files (shared-nothing; intern
snapshots shipped at fork like ``engine_parallel``), each behind its
own HTTP socket, with :class:`FleetClient` routing by lineage affinity
so repeated point queries land on a warm :class:`ResponseCache`.
Per-tenant :class:`~repro.serving.quota.TokenBucket` quotas shed
over-rate tenants with 429 + ``Retry-After``.

This subpackage is imported on demand (``import repro.serving``), not
by ``import repro`` — command-line tools that never serve pay nothing.
"""

from .app import ServingApp, serve
from .client import ASGIClient, ServingClient
from .codec import (
    dnf_from_json,
    dnf_to_json,
    overrides_from_json,
    overrides_to_json,
)
from .engine import ServingConfig, ServingEngine
from .errors import ServingError
from .fleet import FleetClient, FleetConfig, ServingFleet
from .quota import TenantQuotas, TokenBucket
from .response_cache import ResponseCache, canonical_overrides
from .stats import ServingStats
from .store import CircuitStoreService, StoreSnapshot

__all__ = [
    "ASGIClient",
    "CircuitStoreService",
    "FleetClient",
    "FleetConfig",
    "ResponseCache",
    "ServingApp",
    "ServingClient",
    "ServingConfig",
    "ServingEngine",
    "ServingError",
    "ServingFleet",
    "ServingStats",
    "StoreSnapshot",
    "TenantQuotas",
    "TokenBucket",
    "canonical_overrides",
    "dnf_from_json",
    "dnf_to_json",
    "overrides_from_json",
    "overrides_to_json",
    "serve",
]
