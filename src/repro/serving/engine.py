"""The asyncio serving engine: batched evaluation over store snapshots.

:class:`ServingEngine` is the request dispatcher of the serving tier.
Each request names a store, a lineage, and an operation (``evaluate``,
``bounds``, ``gradients``, ``what_if``, ``sweep``, ``top_k``); the
engine resolves the circuit from the store snapshot (or the warm
overlay of circuits it compiled itself), runs the operation, and
returns a JSON-ready response that always reports which ``strategy``
produced the numbers:

``store``
    served straight from the persisted store snapshot;
``overlay``
    from a circuit this server compiled earlier for a cold lineage;
``engine`` / ``engine-compile``
    graceful degradation — the lineage was not in the store, so the
    attached :class:`~repro.engine.ConfidenceEngine` computed it (or
    compiled a circuit into the overlay) on a worker thread.

Micro-batching: concurrent single-scenario requests against the *same*
circuit are coalesced — each enqueues a row into a per-``(circuit,
kind)`` bucket that flushes after ``batch_window_seconds`` (or at
``max_batch`` rows) through one :func:`~repro.circuits.sweep_values` /
:func:`~repro.circuits.sweep_bounds` call, i.e. one kernel
``evaluate_batch`` on the numpy backend.  Multi-scenario operations
(``what_if``, ``sweep``, ``top_k``) enqueue all their rows at once, so
batch occupancy exceeds 1 even for a single client.  Sweep results are
bit-identical to the scalar path by the sweep module's own contract,
so batching is a latency decision, never a semantics one.

Backpressure: admission beyond ``max_inflight + queue_limit`` sheds
with a structured ``overloaded`` error; admitted requests wait on a
global and a per-tenant semaphore, and per-request deadlines (read
through :mod:`repro.core.clock`, so tests can fake time) fail with
``deadline-exceeded`` rather than queueing forever.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..circuits.cache import CircuitCache
from ..circuits.circuit import Circuit
from ..circuits.sweep import (
    refine_sweep_bounds,
    sweep_bounds,
    sweep_values,
    what_if_scenarios,
)
from ..core import clock
from ..core.dnf import DNF
from .codec import (
    answers_from_json,
    dnf_from_json,
    gradients_to_json,
    overrides_from_json,
    scenarios_from_json,
    value_from_json,
    value_to_json,
)
from .errors import ServingError
from .quota import TenantQuotas
from .response_cache import ResponseCache, canonical_overrides
from .stats import ServingStats
from .store import CircuitStoreService, StoreSnapshot

__all__ = ["ServingConfig", "ServingEngine"]

_OPS = ("evaluate", "bounds", "gradients", "what_if", "sweep", "top_k")

#: Strategies whose responses are pure functions of the snapshot and
#: the request — safe to replay from the response cache.  ``engine``
#: is excluded: a cold computation may have used the (seeded or not)
#: MC rung, and its convergence is budget-dependent.
_CACHEABLE_STRATEGIES = frozenset({"store", "overlay", "engine-compile"})


def _interval_width(circuit: Circuit) -> float:
    """Root-bound width under base probabilities — the tightness order
    refinement improves, used to pick between two partial circuits for
    the same lineage."""
    low, high = circuit.evaluate_bounds()
    return high - low


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs for one :class:`ServingEngine`.

    ``max_inflight`` requests run concurrently; up to ``queue_limit``
    more wait; anything beyond is shed immediately.  ``batch_window_
    seconds`` is how long the first row of a micro-batch waits for
    company before flushing (0 flushes synchronously per row).
    """

    max_inflight: int = 64
    per_tenant_inflight: int = 16
    queue_limit: int = 256
    batch_window_seconds: float = 0.002
    max_batch: int = 256
    default_deadline_seconds: Optional[float] = None
    #: Forwarded to the sweep entry points (None = auto backend).
    vectorized: Optional[bool] = None
    #: Refinement rounds allowed when a ``bounds``/``sweep`` request
    #: asks for ``refine`` on a partial circuit (engine required).
    refine_rounds: int = 4
    #: Circuits the overlay keeps for cold lineages before wholesale
    #: eviction (the CircuitCache policy).
    overlay_entries: int = 1024
    #: Finished responses kept in the LRU response cache (0 disables).
    #: Cached answers are bit-identical by construction: the cached
    #: object is the response computed on the first request, keyed by
    #: store snapshot version + canonicalized arguments.
    response_cache_entries: int = 1024
    #: Per-tenant token-bucket quota in requests/second (None =
    #: unmetered).  A tenant over quota is rejected with
    #: ``quota-exceeded`` (429) and a retry-after; other tenants are
    #: unaffected.
    quota_rps: Optional[float] = None
    #: Bucket capacity (how far a quiet tenant may burst); defaults to
    #: twice the rate.
    quota_burst: Optional[float] = None
    #: Per-tenant rate overrides (``tenant -> rps``; ``None`` exempts
    #: that tenant from metering).
    tenant_quota_rps: Optional[Mapping[str, Optional[float]]] = None


class _Bucket:
    """One pending micro-batch: same circuit, same result kind."""

    __slots__ = ("circuit", "kind", "overrides", "futures", "handle")

    def __init__(self, circuit: Circuit, kind: str) -> None:
        self.circuit = circuit
        self.kind = kind
        self.overrides: List[Optional[Dict[Any, Any]]] = []
        self.futures: List["asyncio.Future[Any]"] = []
        self.handle: Optional[asyncio.TimerHandle] = None


class _MicroBatcher:
    """Coalesces same-circuit rows into single batched sweep calls."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        stats: ServingStats,
        *,
        window: float,
        max_batch: int,
        vectorized: Optional[bool],
    ) -> None:
        self.loop = loop
        self.stats = stats
        self.window = window
        self.max_batch = max_batch
        self.vectorized = vectorized
        self.buckets: Dict[Tuple[int, str], _Bucket] = {}

    def submit(
        self,
        circuit: Circuit,
        overrides: Optional[Dict[Any, Any]],
        kind: str,
    ) -> "asyncio.Future[Any]":
        # Validate per row *before* enqueueing so a bad scenario fails
        # its own request, never the whole batch it would share.
        try:
            circuit._resolve_overrides(overrides)
        except Exception as exc:
            raise ServingError(
                "bad-request", f"invalid overrides: {exc}"
            ) from exc
        key = (id(circuit), kind)
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = _Bucket(circuit, kind)
            self.buckets[key] = bucket
            bucket.handle = self.loop.call_later(
                self.window, self._flush, key
            )
        future: "asyncio.Future[Any]" = self.loop.create_future()
        bucket.overrides.append(overrides)
        bucket.futures.append(future)
        if len(bucket.futures) >= self.max_batch:
            self._flush(key)
        return future

    def _flush(self, key: Tuple[int, str]) -> None:
        bucket = self.buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.handle is not None:
            bucket.handle.cancel()
        self.stats.record_batch(len(bucket.futures))
        try:
            if bucket.kind == "bounds":
                results: List[Any] = [
                    list(pair)
                    for pair in sweep_bounds(
                        bucket.circuit,
                        bucket.overrides,
                        vectorized=self.vectorized,
                    )
                ]
            else:
                results = sweep_values(
                    bucket.circuit,
                    bucket.overrides,
                    vectorized=self.vectorized,
                )
        except Exception as exc:  # pragma: no cover - defensive
            error = ServingError(
                "internal", f"batched sweep failed: {exc}"
            )
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(bucket.futures, results):
            if not future.done():
                future.set_result(result)

    def flush_all(self) -> None:
        for key in list(self.buckets):
            self._flush(key)


class ServingEngine:
    """Dispatches serving requests against a :class:`CircuitStoreService`.

    ``engine`` is the optional :class:`~repro.engine.ConfidenceEngine`
    used for graceful degradation on cold lineages; without one, a
    lineage missing from every store snapshot is an ``unknown-circuit``
    error.  All engine work runs on a worker thread under a lock (the
    engine's decomposition cache is not thread-safe), so the event loop
    keeps serving warm traffic while a cold lineage compiles.
    """

    def __init__(
        self,
        stores: CircuitStoreService,
        engine: Optional[object] = None,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.stores = stores
        self.engine = engine
        self.config = config or ServingConfig()
        self.stats = ServingStats()
        #: Warm cache of circuits this server compiled for cold
        #: lineages (partial circuits included — exact_only=False).
        self.overlay = CircuitCache(
            max_entries=self.config.overlay_entries
        )
        #: Finished responses for repeated point queries, keyed by
        #: store snapshot version (purged eagerly on version bumps).
        self.responses = ResponseCache(
            max_entries=self.config.response_cache_entries
        )
        #: Last snapshot version seen per store, for eager purging.
        self._response_versions: Dict[str, str] = {}
        #: Token-bucket rate quotas, layered over the semaphores.
        self.quotas = TenantQuotas(
            self.config.quota_rps,
            burst=self.config.quota_burst,
            tenant_rates=self.config.tenant_quota_rps,
        )
        self._engine_lock = threading.Lock()
        self._pending = 0
        # Loop-bound state, re-created if the engine is reused from a
        # different event loop (tests call asyncio.run repeatedly).
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._global_sem: Optional[asyncio.Semaphore] = None
        self._tenant_sems: Dict[str, asyncio.Semaphore] = {}
        self._batcher: Optional[_MicroBatcher] = None

    # -- public entry ----------------------------------------------------
    async def handle(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Serve one request dict; raises :class:`ServingError`."""
        start = clock.monotonic()
        op = request.get("op")
        if op not in _OPS:
            error = ServingError(
                "bad-request",
                f"unknown op {op!r} (expected one of {', '.join(_OPS)})",
            )
            self.stats.record_error(error.code)
            raise error
        tenant = str(request.get("tenant", "default"))
        limit = self.config.max_inflight + self.config.queue_limit
        if self._pending >= limit:
            self.stats.shed += 1
            self.stats.record_error("overloaded")
            raise ServingError(
                "overloaded",
                f"{self._pending} requests already admitted "
                f"(limit {limit}); retry later",
                details={"inflight": self._pending, "limit": limit},
            )
        # Rate quota after overload shedding, before any queueing: a
        # tenant over its token bucket is rejected immediately (429 +
        # retry-after) and never occupies a semaphore slot, so other
        # tenants see no queueing effect from a hammering neighbour.
        retry_after = self.quotas.try_acquire(tenant)
        if retry_after > 0.0:
            self.stats.quota_rejections += 1
            self.stats.record_error("quota-exceeded")
            raise ServingError(
                "quota-exceeded",
                f"tenant {tenant!r} exceeded its request quota; retry "
                f"in {retry_after:.3f}s",
                details={
                    "tenant": tenant,
                    "retry_after_seconds": retry_after,
                },
            )
        self._ensure_loop_state()
        self._pending += 1
        self.stats.enter_inflight()
        try:
            assert self._global_sem is not None
            async with self._global_sem:
                async with self._tenant_sem(tenant):
                    self.stats.record_tenant(tenant)
                    deadline = self._deadline(request, start)
                    self._check_deadline(deadline, "queued")
                    handler: Callable[..., Any] = getattr(
                        self, f"_op_{op}"
                    )
                    response = await handler(request, deadline)
            response["op"] = op
            self.stats.record_request(op, clock.monotonic() - start)
            return response
        except ServingError as exc:
            self.stats.record_error(exc.code)
            raise
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.record_error("internal")
            raise ServingError(
                "internal", f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            self._pending -= 1
            self.stats.exit_inflight()

    async def close(self) -> None:
        """Flush any pending micro-batches (idempotent)."""
        if self._batcher is not None:
            self._batcher.flush_all()

    # -- plumbing --------------------------------------------------------
    def _ensure_loop_state(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self._loop = loop
            self._global_sem = asyncio.Semaphore(self.config.max_inflight)
            self._tenant_sems = {}
            self._batcher = _MicroBatcher(
                loop,
                self.stats,
                window=self.config.batch_window_seconds,
                max_batch=self.config.max_batch,
                vectorized=self.config.vectorized,
            )

    def _tenant_sem(self, tenant: str) -> asyncio.Semaphore:
        semaphore = self._tenant_sems.get(tenant)
        if semaphore is None:
            semaphore = asyncio.Semaphore(self.config.per_tenant_inflight)
            self._tenant_sems[tenant] = semaphore
        return semaphore

    def _deadline(
        self, request: Mapping[str, Any], start: float
    ) -> Optional[float]:
        seconds = request.get(
            "deadline_seconds", self.config.default_deadline_seconds
        )
        if seconds is None:
            return None
        try:
            seconds = float(seconds)
        except (TypeError, ValueError):
            raise ServingError(
                "bad-request",
                f"deadline_seconds must be a number, got {seconds!r}",
            ) from None
        return start + seconds

    def _check_deadline(
        self, deadline: Optional[float], stage: str
    ) -> None:
        if deadline is not None and clock.monotonic() >= deadline:
            raise ServingError(
                "deadline-exceeded",
                f"request deadline expired while {stage}",
            )

    def _remaining(self, deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return max(0.0, deadline - clock.monotonic())

    def _snapshot(self, request: Mapping[str, Any]) -> StoreSnapshot:
        name = request.get("store")
        if name is None:
            names = self.stores.names()
            if len(names) == 1:
                name = names[0]
            else:
                raise ServingError(
                    "bad-request",
                    "request must name a store (available: "
                    f"{', '.join(names) or 'none'})",
                )
        snapshot = self.stores.snapshot(str(name))
        self.stats.reloads = self.stores.reloads
        # Version bump (hot reload / live-cache mutation): stale cached
        # responses are already unreachable — keys embed the version —
        # but purge them eagerly so a reload never pins dead entries.
        last = self._response_versions.get(snapshot.name)
        if last != snapshot.version:
            if last is not None:
                self.responses.purge_store(snapshot.name)
            self._response_versions[snapshot.name] = snapshot.version
        expected = request.get("expect_version")
        if expected is not None and expected != snapshot.version:
            raise ServingError(
                "stale-version",
                f"store {snapshot.name!r} is at version "
                f"{snapshot.version!r}, request expected {expected!r}",
                details={
                    "store": snapshot.name,
                    "current": snapshot.version,
                    "expected": expected,
                },
            )
        return snapshot

    def _lineage(self, data: Any) -> DNF:
        if isinstance(data, DNF):
            return data  # in-process client shortcut
        return dnf_from_json(data)

    async def _with_engine(
        self, deadline: Optional[float], work: Callable[[], Any]
    ) -> Any:
        self._check_deadline(deadline, "waiting for the engine")

        def locked() -> Any:
            with self._engine_lock:
                return work()

        result = await asyncio.to_thread(locked)
        self._check_deadline(deadline, "finishing engine work")
        return result

    async def _circuit_for(
        self,
        snapshot: StoreSnapshot,
        dnf: DNF,
        deadline: Optional[float],
        *,
        compile_cold: bool,
        require_exact: bool = False,
    ) -> Tuple[Optional[Circuit], str]:
        """Resolve a circuit: store snapshot, then overlay, then cold.

        A *partial* store hit defers to the overlay when the overlay
        holds a strictly tighter circuit for the same lineage — that is
        where ``refine`` requests park their expansion progress, and a
        stale snapshot must not shadow it.  With ``require_exact``,
        partial circuits never resolve at all (operations like
        ``evaluate`` and ``gradients`` need exact values, not interval
        midpoints); the lineage degrades to the cold path below, whose
        unbudgeted compile is exact.

        Returns ``(None, "engine")`` for a cold lineage when
        ``compile_cold`` is False — the caller degrades to a direct
        engine computation instead of compiling.
        """
        circuit: Optional[Circuit] = snapshot.get(dnf)
        strategy = "store"
        if circuit is not None and not circuit.is_exact:
            refined = self.overlay.get(dnf)
            if refined is not None and (
                refined.is_exact
                or _interval_width(refined) < _interval_width(circuit)
            ):
                circuit, strategy = refined, "overlay"
        elif circuit is None:
            circuit, strategy = self.overlay.get(dnf), "overlay"
        if require_exact and circuit is not None and not circuit.is_exact:
            circuit = None
        if circuit is not None:
            if strategy == "store":
                self.stats.store_hits += 1
            else:
                self.stats.overlay_hits += 1
            return circuit, strategy
        self.stats.store_misses += 1
        if self.engine is None:
            raise ServingError(
                "unknown-circuit",
                f"lineage not in store {snapshot.name!r} and no engine "
                "is attached for cold computation",
            )
        if not compile_cold:
            return None, "engine"
        engine = self.engine
        circuit = await self._with_engine(
            deadline, lambda: engine.compile_circuit(dnf)  # type: ignore[attr-defined]
        )
        self.overlay.put(dnf, circuit, exact_only=False)
        self.stats.engine_fallbacks += 1
        return circuit, "engine-compile"

    async def _submit(
        self,
        circuit: Circuit,
        overrides: Optional[Dict[Any, Any]],
        kind: str,
        deadline: Optional[float],
    ) -> Any:
        assert self._batcher is not None
        result = await self._batcher.submit(circuit, overrides, kind)
        self._check_deadline(deadline, "awaiting the batched sweep")
        return result

    async def _submit_many(
        self,
        circuit: Circuit,
        scenario_list: List[Optional[Dict[Any, Any]]],
        kind: str,
        deadline: Optional[float],
    ) -> List[Any]:
        assert self._batcher is not None
        futures = [
            self._batcher.submit(circuit, overrides, kind)
            for overrides in scenario_list
        ]
        results = await asyncio.gather(*futures)
        self._check_deadline(deadline, "awaiting the batched sweep")
        return list(results)

    def _base(
        self, snapshot: StoreSnapshot, strategy: str
    ) -> Dict[str, Any]:
        return {
            "store": snapshot.name,
            "store_version": snapshot.version,
            "strategy": strategy,
        }

    # -- response cache --------------------------------------------------
    def _response_key(
        self, snapshot: StoreSnapshot, op: str, *parts: Any
    ) -> Optional[Tuple[Any, ...]]:
        """The cache key for a request, or None when uncacheable
        (cache disabled, or the caller passes no key on purpose)."""
        if not self.responses.enabled:
            return None
        return (snapshot.name, snapshot.version, op) + parts

    def _cached_response(
        self, key: Optional[Tuple[Any, ...]]
    ) -> Optional[Dict[str, Any]]:
        if key is None:
            return None
        response = self.responses.get(key)
        if response is None:
            self.stats.response_misses += 1
            return None
        self.stats.response_hits += 1
        response["cached"] = True
        return response

    def _store_response(
        self,
        key: Optional[Tuple[Any, ...]],
        response: Dict[str, Any],
    ) -> None:
        """Cache a finished response if its strategy is deterministic
        (``top_k`` handles its own ``mixed`` strategy set inline)."""
        if key is None:
            return
        if response.get("strategy") in _CACHEABLE_STRATEGIES:
            self.responses.put(key, response)

    # -- operations ------------------------------------------------------
    async def _op_evaluate(
        self, request: Mapping[str, Any], deadline: Optional[float]
    ) -> Dict[str, Any]:
        snapshot = self._snapshot(request)
        dnf = self._lineage(request.get("lineage"))
        overrides = overrides_from_json(request.get("overrides"))
        key = self._response_key(
            snapshot, "evaluate", dnf, canonical_overrides(overrides)
        )
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        # A cold lineage with overrides needs a circuit (the engine
        # computes base probabilities only), so compile in that case.
        circuit, strategy = await self._circuit_for(
            snapshot,
            dnf,
            deadline,
            compile_cold=overrides is not None,
            require_exact=True,
        )
        if circuit is None:
            result = await self._engine_compute(dnf, request, deadline)
            response = self._base(snapshot, "engine")
            response.update(
                value=result.probability,
                converged=result.converged,
                reason=result.reason,
            )
            return response
        value = await self._submit(circuit, overrides, "values", deadline)
        response = self._base(snapshot, strategy)
        response["value"] = value
        response["exact"] = circuit.is_exact
        self._store_response(key, response)
        return response

    async def _op_bounds(
        self, request: Mapping[str, Any], deadline: Optional[float]
    ) -> Dict[str, Any]:
        snapshot = self._snapshot(request)
        dnf = self._lineage(request.get("lineage"))
        overrides = overrides_from_json(request.get("overrides"))
        refine = bool(request.get("refine", False))
        # Refinement mutates the overlay circuit between requests, so
        # only non-refining bounds are cacheable.
        key = (
            None
            if refine
            else self._response_key(
                snapshot, "bounds", dnf, canonical_overrides(overrides)
            )
        )
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        circuit, strategy = await self._circuit_for(
            snapshot,
            dnf,
            deadline,
            compile_cold=overrides is not None or refine,
        )
        if circuit is None:
            result = await self._engine_compute(dnf, request, deadline)
            response = self._base(snapshot, "engine")
            response.update(
                bounds=[result.lower, result.upper],
                converged=result.converged,
                reason=result.reason,
            )
            return response
        if refine and circuit.residuals and self.engine is not None:
            circuit, pair = await self._refine(
                snapshot, dnf, circuit, [overrides], request, deadline
            )
            bounds = list(pair[0])
            strategy = strategy + "+refined"
        else:
            bounds = await self._submit(
                circuit, overrides, "bounds", deadline
            )
        response = self._base(snapshot, strategy)
        response["bounds"] = bounds
        response["width"] = bounds[1] - bounds[0]
        self._store_response(key, response)
        return response

    async def _op_gradients(
        self, request: Mapping[str, Any], deadline: Optional[float]
    ) -> Dict[str, Any]:
        snapshot = self._snapshot(request)
        dnf = self._lineage(request.get("lineage"))
        overrides = overrides_from_json(request.get("overrides"))
        key = self._response_key(
            snapshot, "gradients", dnf, canonical_overrides(overrides)
        )
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        circuit, strategy = await self._circuit_for(
            snapshot, dnf, deadline, compile_cold=True, require_exact=True
        )
        assert circuit is not None
        # Scalar on purpose: Circuit.gradients is the bit-exact
        # reference (the kernel's adjoint fold agrees only to ~1e-12).
        try:
            gradients = circuit.gradients(overrides)
        except Exception as exc:
            raise ServingError(
                "bad-request", f"invalid overrides: {exc}"
            ) from exc
        self._check_deadline(deadline, "computing gradients")
        response = self._base(snapshot, strategy)
        response["gradients"] = gradients_to_json(gradients)
        self._store_response(key, response)
        return response

    async def _op_what_if(
        self, request: Mapping[str, Any], deadline: Optional[float]
    ) -> Dict[str, Any]:
        snapshot = self._snapshot(request)
        dnf = self._lineage(request.get("lineage"))
        variable = value_from_json(request.get("variable"))
        probabilities = request.get("probabilities")
        if not isinstance(probabilities, list) or not all(
            isinstance(p, (int, float)) and not isinstance(p, bool)
            for p in probabilities
        ):
            raise ServingError(
                "bad-request",
                "what_if needs a numeric probabilities list",
            )
        key = self._response_key(
            snapshot,
            "what_if",
            dnf,
            variable,
            tuple(float(p) for p in probabilities),
        )
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        circuit, strategy = await self._circuit_for(
            snapshot, dnf, deadline, compile_cold=True, require_exact=True
        )
        assert circuit is not None
        scenarios = what_if_scenarios(variable, probabilities)
        values = await self._submit_many(
            circuit, list(scenarios), "values", deadline
        )
        response = self._base(snapshot, strategy)
        response["variable"] = value_to_json(variable)
        response["probabilities"] = [float(p) for p in probabilities]
        response["values"] = values
        self._store_response(key, response)
        return response

    async def _op_sweep(
        self, request: Mapping[str, Any], deadline: Optional[float]
    ) -> Dict[str, Any]:
        snapshot = self._snapshot(request)
        dnf = self._lineage(request.get("lineage"))
        scenarios = scenarios_from_json(request.get("scenarios"))
        kind = request.get("kind", "values")
        if kind not in ("values", "bounds"):
            raise ServingError(
                "bad-request",
                f"sweep kind must be 'values' or 'bounds', got {kind!r}",
            )
        refine = bool(request.get("refine", False)) and kind == "bounds"
        # Refinement mutates the overlay circuit, so only plain sweeps
        # are cacheable.
        key = (
            None
            if refine
            else self._response_key(
                snapshot,
                "sweep",
                dnf,
                kind,
                tuple(canonical_overrides(s) for s in scenarios),
            )
        )
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        circuit, strategy = await self._circuit_for(
            snapshot, dnf, deadline, compile_cold=True
        )
        assert circuit is not None
        response = self._base(snapshot, strategy)
        if refine and circuit.residuals and self.engine is not None:
            circuit, bounds = await self._refine(
                snapshot, dnf, circuit, scenarios, request, deadline
            )
            response["strategy"] = strategy + "+refined"
            response["results"] = [list(pair) for pair in bounds]
        else:
            response["results"] = await self._submit_many(
                circuit, scenarios, kind, deadline
            )
        response["kind"] = kind
        response["scenario_count"] = len(scenarios)
        self._store_response(key, response)
        return response

    async def _op_top_k(
        self, request: Mapping[str, Any], deadline: Optional[float]
    ) -> Dict[str, Any]:
        snapshot = self._snapshot(request)
        lineages_data = request.get("lineages")
        if not isinstance(lineages_data, list) or not lineages_data:
            raise ServingError(
                "bad-request", "top_k needs a non-empty lineages list"
            )
        dnfs = [self._lineage(entry) for entry in lineages_data]
        answers = answers_from_json(request.get("answers"), len(dnfs))
        k = request.get("k", len(dnfs))
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServingError(
                "bad-request", f"k must be a positive integer, got {k!r}"
            )
        overrides = overrides_from_json(request.get("overrides"))
        key = self._response_key(
            snapshot,
            "top_k",
            tuple(dnfs),
            min(k, len(dnfs)),
            canonical_overrides(overrides),
            tuple(answers),
        )
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        strategies = set()
        futures = []
        assert self._batcher is not None
        for dnf in dnfs:
            circuit, strategy = await self._circuit_for(
                snapshot, dnf, deadline, compile_cold=True,
                require_exact=True,
            )
            assert circuit is not None
            strategies.add(strategy)
            futures.append(
                self._batcher.submit(circuit, overrides, "values")
            )
        values = list(await asyncio.gather(*futures))
        self._check_deadline(deadline, "awaiting the batched sweep")
        ranked = sorted(
            range(len(values)), key=lambda i: (-values[i], i)
        )[: min(k, len(values))]
        strategy = (
            strategies.pop() if len(strategies) == 1 else "mixed"
        )
        response = self._base(snapshot, strategy)
        response["k"] = min(k, len(values))
        response["answers"] = [
            [value_to_json(answers[i]), values[i]] for i in ranked
        ]
        # A "mixed" strategy set is cacheable as long as every member
        # is deterministic; _store_response only knows single strategies.
        if key is not None and strategies <= _CACHEABLE_STRATEGIES:
            self.responses.put(key, response)
        return response

    # -- degradation helpers ---------------------------------------------
    async def _engine_compute(
        self,
        dnf: DNF,
        request: Mapping[str, Any],
        deadline: Optional[float],
    ) -> Any:
        """Cold-path direct computation (confidence + bounds)."""
        engine = self.engine
        assert engine is not None
        epsilon = request.get("epsilon")

        def work() -> Any:
            return engine.compute(  # type: ignore[attr-defined]
                dnf,
                epsilon=epsilon,
                deadline_seconds=self._remaining(deadline),
            )

        result = await self._with_engine(deadline, work)
        if getattr(result, "circuit", None) is not None:
            self.overlay.put(dnf, result.circuit, exact_only=False)
        self.stats.engine_fallbacks += 1
        return result

    async def _refine(
        self,
        snapshot: StoreSnapshot,
        dnf: DNF,
        circuit: Circuit,
        scenarios: List[Optional[Dict[Any, Any]]],
        request: Mapping[str, Any],
        deadline: Optional[float],
    ) -> Tuple[Circuit, List[Tuple[float, float]]]:
        """Batched residual refinement across all request scenarios.

        The expanded circuit outlives the request: it always lands in
        the overlay (``_circuit_for`` prefers it over the stale partial
        snapshot), and for live-cache stores it is also written back to
        the backing session cache, whose owner persists it on close
        (``persist_circuits=``) — refinement progress survives requests
        and processes.
        """
        engine = self.engine
        assert engine is not None
        target_width = float(request.get("target_width", 0.0))

        def work() -> Tuple[Circuit, List[Tuple[float, float]]]:
            return refine_sweep_bounds(
                circuit,
                scenarios,
                compile_subcircuit=engine.compile_circuit,  # type: ignore[attr-defined]
                target_width=target_width,
                max_rounds=self.config.refine_rounds,
                vectorized=self.config.vectorized,
            )

        refined, bounds = await self._with_engine(deadline, work)
        if refined is not circuit:
            self.overlay.put(dnf, refined, exact_only=False)
            if not self.stores.writeback(snapshot.name, dnf, refined):
                # File snapshots are immutable, so the progress lives
                # only in the overlay — drop the store's cached
                # responses, which would otherwise keep replaying the
                # pre-refinement bounds.  (Live-cache writebacks bump
                # the snapshot version instead, which purges on the
                # next request.)
                self.responses.purge_store(snapshot.name)
            self.stats.refinements += 1
        return refined, bounds

    def __repr__(self) -> str:
        return (
            f"ServingEngine(stores={list(self.stores.names())!r}, "
            f"engine={'attached' if self.engine else 'none'}, "
            f"{self.stats!r})"
        )
