"""Per-tenant token-bucket rate quotas for the serving tier.

The concurrency semaphores in :class:`~repro.serving.ServingEngine`
bound how much of the server a tenant can hold *at once*; a
:class:`TokenBucket` bounds how much it may consume *over time* — the
"millions of users" knob: a tenant hammering cheap point queries gets
throttled to its provisioned request rate instead of starving everyone
else's admission queue.

Time is read through :mod:`repro.core.clock`, so quota tests run on the
fake clock like every other deadline test in the library: refill exact,
no sleeps, no flaking.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

from ..core import clock

__all__ = ["TenantQuotas", "TokenBucket"]


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    Starts full (a quiet tenant may burst up to ``burst`` requests at
    once), refills continuously, and never accumulates beyond the cap.
    :meth:`try_acquire` is the only operation: take one token if
    available, otherwise report how long until one accrues.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_lock")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"token rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._tokens = self.burst
        self._updated = clock.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self) -> float:
        """Take one token; returns 0.0 on success, else the seconds
        until the next token accrues (the client's retry-after)."""
        with self._lock:
            now = clock.monotonic()
            elapsed = max(0.0, now - self._updated)
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (un-refilled; diagnostic only)."""
        return self._tokens

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate:g}/s, burst={self.burst:g}, "
            f"tokens={self._tokens:.2f})"
        )


class TenantQuotas:
    """One bucket per tenant, built lazily from the configured rates.

    ``default_rate`` applies to any tenant without an entry in
    ``tenant_rates``; a tenant whose effective rate is ``None`` (or not
    positive) is unmetered.  ``burst`` defaults to twice the rate —
    enough that a well-behaved tenant never notices the meter.
    """

    def __init__(
        self,
        default_rate: Optional[float],
        *,
        burst: Optional[float] = None,
        tenant_rates: Optional[Mapping[str, Optional[float]]] = None,
    ) -> None:
        self.default_rate = default_rate
        self.burst = burst
        self.tenant_rates = dict(tenant_rates or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _rate_for(self, tenant: str) -> Optional[float]:
        rate = self.tenant_rates.get(tenant, self.default_rate)
        if rate is None or rate <= 0.0:
            return None
        return float(rate)

    def try_acquire(self, tenant: str) -> float:
        """0.0 if ``tenant`` may proceed, else its retry-after seconds."""
        rate = self._rate_for(tenant)
        if rate is None:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None or bucket.rate != rate:
                burst = self.burst if self.burst is not None else 2.0 * rate
                bucket = TokenBucket(rate, burst)
                self._buckets[tenant] = bucket
        return bucket.try_acquire()

    def __repr__(self) -> str:
        return (
            f"TenantQuotas(default={self.default_rate!r}, "
            f"{len(self._buckets)} live buckets)"
        )
