"""Thin ASGI/JSON front-end over a :class:`ServingEngine`.

:class:`ServingApp` is a dependency-free ASGI 3 application (plain
``async def __call__(scope, receive, send)``), so it runs under any
ASGI server — and, for tests and benchmarks, directly in-process via
:class:`~repro.serving.client.ASGIClient` with no server at all.

Routes::

    GET  /healthz           liveness + store names
    GET  /v1/stats          ServingStats summary (latency, occupancy, shed)
    GET  /v1/stores         per-store name/path/version/entry-count
    POST /v1/<op>           evaluate | bounds | gradients | what_if
                            | sweep | top_k — body per repro.serving.codec
    POST /v1/stores/add     {"name", "path", "lazy"?} — register a store
    POST /v1/stores/drop    {"name"} — retire a store
    POST /v1/stores/reload  {"name"} — force a reload from disk
    POST /v1/stores/serve_directory  {"path", "suffix"?} — lazy-serve
                            every circuit file in a directory

Every :class:`~repro.serving.errors.ServingError` maps to its HTTP
status with a structured ``{"error": {code, message, details}}`` body
(quota rejections additionally carry a ``Retry-After`` header); nothing
else is ever surfaced to a client.

:func:`serve` runs the app under uvicorn **if it is installed** (the
``repro[serve]`` extra); the import is gated so the serving tier —
like the rest of the library — works from the standard library alone.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Optional, Tuple

from .engine import ServingConfig, ServingEngine
from .errors import ServingError
from .store import CircuitStoreService

__all__ = ["ServingApp", "serve"]

_MAX_BODY_BYTES = 16 * 1024 * 1024
_POST_OPS = ("evaluate", "bounds", "gradients", "what_if", "sweep", "top_k")


class ServingApp:
    """ASGI 3 application wrapping one :class:`ServingEngine`."""

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine

    # -- ASGI ------------------------------------------------------------
    async def __call__(
        self,
        scope: Dict[str, Any],
        receive: Callable[[], Any],
        send: Callable[[Dict[str, Any]], Any],
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(
                f"unsupported ASGI scope type {scope['type']!r}"
            )
        method = scope["method"]
        path = scope["path"]
        headers: Tuple[Tuple[bytes, bytes], ...] = ()
        try:
            status, payload = await self._route(method, path, receive)
        except ServingError as exc:
            status, payload = exc.status, exc.to_json()
            retry_after = exc.retry_after_seconds
            if retry_after is not None:
                # RFC 9110 Retry-After is integral seconds; round up so
                # a compliant client never retries before the quota
                # bucket actually has a token.
                headers = (
                    (
                        b"retry-after",
                        str(max(1, math.ceil(retry_after))).encode("ascii"),
                    ),
                )
        except Exception as exc:  # pragma: no cover - defensive
            error = ServingError(
                "internal", f"{type(exc).__name__}: {exc}"
            )
            status, payload = error.status, error.to_json()
        await self._send_json(send, status, payload, headers)

    async def _lifespan(
        self,
        receive: Callable[[], Any],
        send: Callable[[Dict[str, Any]], Any],
    ) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.engine.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- routing ---------------------------------------------------------
    async def _route(
        self, method: str, path: str, receive: Callable[[], Any]
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "status": "ok",
                    "stores": list(self.engine.stores.names()),
                }
            if path == "/v1/stats":
                return 200, self.engine.stats.summary()
            if path == "/v1/stores":
                return 200, {"stores": self.engine.stores.describe()}
            raise ServingError(
                "bad-request", f"no GET route {path!r}", status=404
            )
        if method == "POST":
            if path.startswith("/v1/stores/"):
                action = path[len("/v1/stores/"):]
                request = await self._read_json(receive)
                return self._catalog(action, request)
            op = path[len("/v1/"):] if path.startswith("/v1/") else ""
            if op not in _POST_OPS:
                raise ServingError(
                    "bad-request", f"no POST route {path!r}", status=404
                )
            request = await self._read_json(receive)
            request["op"] = op
            response = await self.engine.handle(request)
            return 200, response
        raise ServingError(
            "bad-request", f"method {method} not allowed", status=405
        )

    # -- store catalog ----------------------------------------------------
    def _catalog(
        self, action: str, request: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Runtime store-catalog management (``POST /v1/stores/<action>``)."""
        stores = self.engine.stores
        if action == "add":
            name = self._required_str(request, "name")
            path = self._required_str(request, "path")
            lazy = bool(request.get("lazy", False))
            snapshot = stores.add_store(name, path, lazy=lazy)
            return 200, {
                "name": name,
                "loaded": snapshot is not None,
                "stores": list(stores.names()),
            }
        if action == "drop":
            name = self._required_str(request, "name")
            stores.drop_store(name)
            # Eagerly free the dropped store's cached responses; the
            # version embedded in each key already makes them
            # unreachable for correctness purposes.
            self.engine.responses.purge_store(name)
            return 200, {"dropped": name, "stores": list(stores.names())}
        if action == "reload":
            name = self._required_str(request, "name")
            snapshot = stores.reload(name)
            return 200, snapshot.describe()
        if action == "serve_directory":
            path = self._required_str(request, "path")
            suffix = request.get("suffix", ".rcir")
            if not isinstance(suffix, str) or not suffix:
                raise ServingError(
                    "bad-request",
                    f"suffix must be a non-empty string, got {suffix!r}",
                )
            added = stores.serve_directory(path, suffix=suffix)
            return 200, {
                "added": list(added),
                "stores": list(stores.names()),
            }
        raise ServingError(
            "bad-request", f"no store-catalog action {action!r}", status=404
        )

    @staticmethod
    def _required_str(request: Dict[str, Any], field: str) -> str:
        value = request.get(field)
        if not isinstance(value, str) or not value:
            raise ServingError(
                "bad-request",
                f"store-catalog request needs a non-empty {field!r} string",
            )
        return value

    async def _read_json(
        self, receive: Callable[[], Any]
    ) -> Dict[str, Any]:
        chunks = []
        total = 0
        while True:
            message = await receive()
            if message["type"] != "http.request":  # pragma: no cover
                raise ServingError(
                    "bad-request", "unexpected ASGI message"
                )
            body = message.get("body", b"")
            total += len(body)
            if total > _MAX_BODY_BYTES:
                raise ServingError(
                    "bad-request",
                    f"request body exceeds {_MAX_BODY_BYTES} bytes",
                    status=413,
                )
            chunks.append(body)
            if not message.get("more_body", False):
                break
        raw = b"".join(chunks)
        if not raw:
            return {}
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise ServingError(
                "bad-request", f"request body is not JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ServingError(
                "bad-request", "request body must be a JSON object"
            )
        return data

    async def _send_json(
        self,
        send: Callable[[Dict[str, Any]], Any],
        status: int,
        payload: Dict[str, Any],
        headers: Tuple[Tuple[bytes, bytes], ...] = (),
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", b"application/json"),
                    (b"content-length", str(len(body)).encode("ascii")),
                    *headers,
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})


def serve(
    stores: CircuitStoreService,
    engine: Optional[object] = None,
    *,
    config: Optional[ServingConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8093,
) -> None:
    """Run the serving app under uvicorn (``pip install repro[serve]``).

    The serving tier itself is stdlib-only; this convenience runner is
    the single place that wants a real HTTP server, so the uvicorn
    import is gated here rather than being a hard dependency.
    """
    try:
        import uvicorn
    except ImportError as exc:  # pragma: no cover - optional extra
        raise RuntimeError(
            "uvicorn is not installed; install the repro[serve] extra, "
            "or drive ServingApp with repro.serving.ASGIClient (tests) "
            "or any other ASGI server"
        ) from exc
    app = ServingApp(ServingEngine(stores, engine, config))
    uvicorn.run(app, host=host, port=port, log_level="warning")
