"""JSON wire codec for the serving tier.

Lineage, overrides, and scenario payloads cross the ASGI boundary as
plain JSON.  Variable names and domain values may be any hashable the
registry knows; JSON can only carry scalars and arrays, so the codec
maps **tuples to JSON arrays** (and back — a decoded array becomes a
tuple, which is how composite tuple-variables like ``("R", 3)`` are
spelled in this library).  Strings, numbers, booleans and null pass
through unchanged.  Dicts are rejected: they are not hashable and
cannot name a variable.

Wire shapes
-----------
* lineage: ``[[[variable, value], ...], ...]`` — a list of clauses,
  each clause a list of ``[variable, value]`` atom pairs.
* overrides: ``[[variable, spec], ...]`` where ``spec`` is a number
  (Boolean shorthand for ``P(variable = True)``) or a distribution as
  ``[[value, probability], ...]`` pairs.
* scenarios: a list of overrides payloads (``null`` = base
  probabilities).

Pair lists (not JSON objects) are used wherever keys may be non-string
values — JSON object keys must be strings, variable names need not be.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence

from ..core.dnf import DNF
from ..core.events import Clause
from .errors import ServingError

__all__ = [
    "dnf_from_json",
    "dnf_to_json",
    "gradients_to_json",
    "overrides_from_json",
    "overrides_to_json",
    "scenarios_from_json",
    "value_from_json",
    "value_to_json",
]


def value_to_json(value: Hashable) -> Any:
    """A variable name / domain value as a JSON-native value."""
    if isinstance(value, tuple):
        return [value_to_json(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ServingError(
        "bad-request",
        f"value {value!r} of type {type(value).__name__} has no JSON "
        "wire form (tuples, strings, numbers, booleans and null only)",
    )


def value_from_json(data: Any) -> Hashable:
    """Inverse of :func:`value_to_json` (arrays become tuples)."""
    if isinstance(data, list):
        return tuple(value_from_json(item) for item in data)
    if isinstance(data, (str, int, float, bool)) or data is None:
        return data
    raise ServingError(
        "bad-request",
        f"JSON value {data!r} cannot name a variable or domain value",
    )


def _pair(data: Any, what: str) -> List[Any]:
    if not isinstance(data, list) or len(data) != 2:
        raise ServingError(
            "bad-request", f"{what} must be a [a, b] pair, got {data!r}"
        )
    return data


# ----------------------------------------------------------------------
# Lineage
# ----------------------------------------------------------------------
def dnf_to_json(dnf: DNF) -> List[List[List[Any]]]:
    """A lineage DNF as the wire clause list (deterministic order)."""
    clauses = []
    for clause in dnf.sorted_clauses():
        clauses.append(
            [
                [value_to_json(variable), value_to_json(value)]
                for variable, value in clause.items()
            ]
        )
    return clauses


def dnf_from_json(data: Any) -> DNF:
    """Parse the wire clause list back into an interned :class:`DNF`."""
    if not isinstance(data, list):
        raise ServingError(
            "bad-request",
            f"lineage must be a list of clauses, got {type(data).__name__}",
        )
    clauses = []
    for clause_data in data:
        if not isinstance(clause_data, list):
            raise ServingError(
                "bad-request",
                "each lineage clause must be a list of [variable, value] "
                f"pairs, got {clause_data!r}",
            )
        bindings: Dict[Hashable, Hashable] = {}
        for pair in clause_data:
            variable_data, value_data = _pair(pair, "lineage atom")
            bindings[value_from_json(variable_data)] = value_from_json(
                value_data
            )
        try:
            clauses.append(Clause(bindings))
        except Exception as exc:
            raise ServingError(
                "bad-request", f"inconsistent lineage clause: {exc}"
            ) from exc
    return DNF(clauses)


# ----------------------------------------------------------------------
# Overrides and scenarios
# ----------------------------------------------------------------------
def overrides_to_json(
    overrides: Optional[Dict[Hashable, Any]]
) -> Optional[List[List[Any]]]:
    """Probability overrides as wire pairs (None passes through)."""
    if overrides is None:
        return None
    out: List[List[Any]] = []
    for variable, spec in overrides.items():
        if isinstance(spec, dict):
            encoded: Any = [
                [value_to_json(value), float(prob)]
                for value, prob in spec.items()
            ]
        else:
            encoded = float(spec)
        out.append([value_to_json(variable), encoded])
    return out


def overrides_from_json(data: Any) -> Optional[Dict[Hashable, Any]]:
    """Parse wire overrides into the :meth:`Circuit.evaluate` shape."""
    if data is None:
        return None
    if not isinstance(data, list):
        raise ServingError(
            "bad-request",
            "overrides must be a list of [variable, spec] pairs, got "
            f"{type(data).__name__}",
        )
    out: Dict[Hashable, Any] = {}
    for pair in data:
        variable_data, spec = _pair(pair, "override")
        variable = value_from_json(variable_data)
        if isinstance(spec, (int, float)) and not isinstance(spec, bool):
            out[variable] = float(spec)
        elif isinstance(spec, list):
            distribution: Dict[Hashable, float] = {}
            for entry in spec:
                value_data, prob = _pair(entry, "distribution entry")
                if not isinstance(prob, (int, float)) or isinstance(
                    prob, bool
                ):
                    raise ServingError(
                        "bad-request",
                        f"distribution probability {prob!r} is not a "
                        "number",
                    )
                distribution[value_from_json(value_data)] = float(prob)
            out[variable] = distribution
        else:
            raise ServingError(
                "bad-request",
                f"override spec {spec!r} must be a probability or a "
                "[[value, probability], ...] distribution",
            )
    return out


def scenarios_from_json(data: Any) -> List[Optional[Dict[Hashable, Any]]]:
    """Parse a wire scenario list (each entry overrides-or-null)."""
    if not isinstance(data, list):
        raise ServingError(
            "bad-request",
            "scenarios must be a list of overrides payloads, got "
            f"{type(data).__name__}",
        )
    return [overrides_from_json(entry) for entry in data]


def gradients_to_json(
    gradients: Dict[Hashable, float]
) -> List[List[Any]]:
    """Per-variable gradients as wire pairs (deterministic order)."""
    return [
        [value_to_json(variable), gradient]
        for variable, gradient in sorted(
            gradients.items(), key=lambda item: repr(item[0])
        )
    ]


def answers_from_json(data: Any, count: int) -> List[Hashable]:
    """Optional per-lineage answer labels (defaults to indices)."""
    if data is None:
        return list(range(count))
    if not isinstance(data, list) or len(data) != count:
        raise ServingError(
            "bad-request",
            f"answers must be a list parallel to lineages ({count} "
            "entries)",
        )
    return [value_from_json(entry) for entry in data]
