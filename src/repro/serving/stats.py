"""Serving metrics: latency, batch occupancy, cache traffic, shedding.

One :class:`ServingStats` lives on each
:class:`~repro.serving.ServingEngine`.  Recording is cheap (counter
bumps and one list append per request) and guarded by a lock so the
engine-fallback worker thread may record too; the benchmark harness
reads :meth:`summary` for its throughput / p50 / p99 columns.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = ["ServingStats", "percentile"]

#: Latency samples kept per op before recording degrades to counting
#: only — bounds memory on long-lived servers; far above any bench run.
_LATENCY_CAPACITY = 200_000


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 for an empty list).

    The standard nearest-rank formula: the smallest sample such that at
    least ``fraction`` of the data is at or below it, i.e. the sample
    at rank ``ceil(fraction * n)``.  ``int(round(...))`` would use
    banker's rounding, which lands on the *wrong* sample at exact ``.5``
    ranks (p50 of 4 samples must be the 2nd, not the 2.5th rounded to
    even); ``math.ceil`` never does.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    index = min(len(ordered) - 1, max(0, rank - 1))
    return ordered[index]


class ServingStats:
    """Counters and latency samples for one serving engine."""

    __slots__ = (
        "_lock",
        "requests",
        "errors",
        "tenants",
        "latencies",
        "latency_dropped",
        "batches",
        "batched_rows",
        "store_hits",
        "overlay_hits",
        "store_misses",
        "response_hits",
        "response_misses",
        "engine_fallbacks",
        "refinements",
        "reloads",
        "shed",
        "quota_rejections",
        "inflight",
        "max_inflight",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: op -> completed request count (successful responses).
        self.requests: Dict[str, int] = {}
        #: error code -> count (every ServingError raised to a client).
        self.errors: Dict[str, int] = {}
        #: tenant -> admitted request count.
        self.tenants: Dict[str, int] = {}
        #: op -> request latency samples, seconds.
        self.latencies: Dict[str, List[float]] = {}
        self.latency_dropped = 0
        #: Kernel flushes and the rows they carried; occupancy =
        #: batched_rows / batches (> 1 means micro-batching coalesced
        #: concurrent requests into shared sweeps).
        self.batches = 0
        self.batched_rows = 0
        self.store_hits = 0
        self.overlay_hits = 0
        self.store_misses = 0
        #: Response-cache traffic: hits answered without touching a
        #: circuit, misses counted only for cacheable requests.
        self.response_hits = 0
        self.response_misses = 0
        self.engine_fallbacks = 0
        self.refinements = 0
        self.reloads = 0
        self.shed = 0
        #: Requests rejected by a tenant's token-bucket quota (429).
        self.quota_rejections = 0
        self.inflight = 0
        self.max_inflight = 0

    # -- recording -------------------------------------------------------
    def record_request(self, op: str, seconds: float) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + 1
            samples = self.latencies.setdefault(op, [])
            if len(samples) < _LATENCY_CAPACITY:
                samples.append(seconds)
            else:
                self.latency_dropped += 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors[code] = self.errors.get(code, 0) + 1

    def record_tenant(self, tenant: str) -> None:
        with self._lock:
            self.tenants[tenant] = self.tenants.get(tenant, 0) + 1

    def record_batch(self, rows: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_rows += rows

    def enter_inflight(self) -> None:
        with self._lock:
            self.inflight += 1
            if self.inflight > self.max_inflight:
                self.max_inflight = self.inflight

    def exit_inflight(self) -> None:
        with self._lock:
            self.inflight -= 1

    # -- derived ---------------------------------------------------------
    def occupancy(self) -> float:
        """Mean rows per kernel flush (0.0 before the first flush)."""
        return self.batched_rows / self.batches if self.batches else 0.0

    def response_hit_ratio(self) -> float:
        """Response-cache hits over cacheable lookups (0.0 when none)."""
        total = self.response_hits + self.response_misses
        return self.response_hits / total if total else 0.0

    def latency_percentiles(
        self, op: Optional[str] = None
    ) -> Dict[str, float]:
        """p50/p99/mean latency in **milliseconds** for ``op`` (or all)."""
        with self._lock:
            if op is None:
                samples = [
                    value
                    for values in self.latencies.values()
                    for value in values
                ]
            else:
                samples = list(self.latencies.get(op, ()))
        mean = sum(samples) / len(samples) if samples else 0.0
        return {
            "p50_ms": percentile(samples, 0.50) * 1000.0,
            "p99_ms": percentile(samples, 0.99) * 1000.0,
            "mean_ms": mean * 1000.0,
            "count": float(len(samples)),
        }

    def summary(self) -> Dict[str, object]:
        """A JSON-ready snapshot (the ``/v1/stats`` payload)."""
        with self._lock:
            requests = dict(self.requests)
            errors = dict(self.errors)
            tenants = dict(self.tenants)
        return {
            "requests": requests,
            "requests_total": sum(requests.values()),
            "errors": errors,
            "tenants": tenants,
            "latency": self.latency_percentiles(),
            "latency_by_op": {
                op: self.latency_percentiles(op) for op in requests
            },
            "batches": self.batches,
            "batched_rows": self.batched_rows,
            "batch_occupancy": self.occupancy(),
            "store_hits": self.store_hits,
            "overlay_hits": self.overlay_hits,
            "store_misses": self.store_misses,
            "response_hits": self.response_hits,
            "response_misses": self.response_misses,
            "response_hit_ratio": self.response_hit_ratio(),
            "engine_fallbacks": self.engine_fallbacks,
            "refinements": self.refinements,
            "reloads": self.reloads,
            "shed": self.shed,
            "quota_rejections": self.quota_rejections,
            "max_inflight": self.max_inflight,
        }

    def __repr__(self) -> str:
        return (
            f"ServingStats({sum(self.requests.values())} requests, "
            f"occupancy={self.occupancy():.2f}, shed={self.shed})"
        )
