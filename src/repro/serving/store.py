"""Circuit-store service: persisted stores as immutable snapshots.

A :class:`CircuitStoreService` owns the read side of one or more PR 5
circuit stores.  Each store is loaded once into a
:class:`StoreSnapshot` — an immutable, share-everything bundle of a
read-only :class:`~repro.circuits.CircuitCacheSnapshot` view plus the
interned-registry snapshot current at load time (the same
``intern_snapshot`` codec ``engine_parallel`` ships to its worker
pools, so a shard process can be handed a snapshot and answer from it
with identical dense ids).  Readers never lock: they take the current
snapshot reference and keep it for the whole request, so a concurrent
reload can never tear a lookup.

Hot reload: every :meth:`snapshot` call (throttled through
:mod:`repro.core.clock`) compares the store file's version —
``mtime_ns:size:dev:ino``, the inode folded in so an atomic same-size
replace within one mtime tick still bumps the version — against the
loaded snapshot's and atomically swaps in a fresh load when the file
changed.  A store may also be backed by
a **live** session :class:`~repro.circuits.CircuitCache` (the
in-process serving path of ``ProbDB.serving()``), in which case the
cache's mutation counter plays the role of the file version.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from ..circuits.cache import CircuitCache, CircuitCacheSnapshot
from ..circuits.circuit import Circuit
from ..core import clock
from ..core.dnf import DNF
from ..core.variables import VariableRegistry, intern_snapshot
from .errors import ServingError

__all__ = ["CircuitStoreService", "StoreSnapshot"]

PathLike = Union[str, "os.PathLike[str]"]


def _file_version(path: str) -> str:
    # mtime alone misses an atomic same-size replace on filesystems
    # with coarse mtime granularity (a fast ``os.replace`` of an
    # equal-length store within one timestamp tick), which would serve
    # the stale snapshot forever.  The inode changes on every replace-
    # by-rename, so folding ``st_ino`` (and ``st_dev``) into the key
    # catches exactly that case without reading the file.
    stat = os.stat(path)
    return (
        f"{stat.st_mtime_ns}:{stat.st_size}:{stat.st_dev}:{stat.st_ino}"
    )


class StoreSnapshot:
    """One immutable, point-in-time view of a circuit store.

    Everything a request handler needs, bundled so it cannot observe a
    half-reloaded state: the circuit lookup (``get``), the store
    ``version`` the answers are attributed to, and the intern snapshot
    to ship if the work fans out to another process.
    """

    __slots__ = ("name", "path", "version", "circuits", "intern")

    def __init__(
        self,
        name: str,
        path: Optional[str],
        version: str,
        circuits: CircuitCacheSnapshot,
        intern: object,
    ) -> None:
        self.name = name
        self.path = path
        self.version = version
        #: Read-only circuit view; plain dict reads, no locks.
        self.circuits = circuits
        #: ``repro.core.variables.intern_snapshot()`` taken at load
        #: time — the engine_parallel shipping codec, so this snapshot
        #: can seed a worker process that then resolves the same dense
        #: ids the circuits were re-interned under.
        self.intern = intern

    def get(self, lineage: DNF) -> Optional[Circuit]:
        return self.circuits.get(lineage)

    def __len__(self) -> int:
        return len(self.circuits)

    def __contains__(self, lineage: DNF) -> bool:
        return lineage in self.circuits

    def keys(self) -> Iterable[DNF]:
        return iter(self.circuits)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "version": self.version,
            "entries": len(self.circuits),
        }

    def __repr__(self) -> str:
        return (
            f"StoreSnapshot({self.name!r}, {len(self.circuits)} "
            f"circuits, version={self.version!r})"
        )


class CircuitStoreService:
    """Loads, versions, and hot-reloads named circuit stores.

    Parameters
    ----------
    registry:
        The probability space circuits re-intern against (stores are
        name-based; any process with an equivalent registry can load
        any store).
    stores:
        Optional ``name -> path`` mapping loaded eagerly.
    strict:
        Forwarded to the store loader: ``True`` raises on entries over
        variables the registry no longer defines, ``False`` (default
        here — a serving fleet prefers partial availability) skips
        them.
    reload_check_seconds:
        Minimum seconds (via :mod:`repro.core.clock`) between version
        probes per store; ``0`` probes on every :meth:`snapshot` call.
    """

    def __init__(
        self,
        registry: VariableRegistry,
        stores: Optional[Mapping[str, PathLike]] = None,
        *,
        strict: bool = False,
        reload_check_seconds: float = 0.05,
    ) -> None:
        self.registry = registry
        self.strict = strict
        self.reload_check_seconds = reload_check_seconds
        self.reloads = 0
        self._lock = threading.Lock()
        self._snapshots: Dict[str, StoreSnapshot] = {}
        #: Live-cache stores: name -> the mutable session cache backing
        #: the snapshot (re-cut when its mutation counter moves).
        self._caches: Dict[str, CircuitCache] = {}
        #: Lazily-registered stores: name -> path, loaded on first
        #: :meth:`snapshot` rather than at registration.
        self._lazy: Dict[str, str] = {}
        #: Served directories: ``(path, suffix)`` pairs rescanned when a
        #: lookup misses, so files dropped in later are picked up.
        self._directories: Dict[str, str] = {}
        self._last_check: Dict[str, float] = {}
        if stores:
            for name, path in stores.items():
                self.add_store(name, path)

    # -- registration ----------------------------------------------------
    def add_store(
        self, name: str, path: PathLike, *, lazy: bool = False
    ) -> Optional[StoreSnapshot]:
        """Register a persisted store file under ``name`` (replaces any
        previous binding of the name).

        ``lazy=True`` defers the load to the first :meth:`snapshot`
        call (the file must merely exist now) and returns ``None``; the
        eager default loads immediately and returns the snapshot.
        """
        path = os.fspath(path)
        if lazy:
            if not os.path.exists(path):
                raise ServingError(
                    "unknown-store",
                    f"store {name!r} at {path!r} does not exist",
                    status=404,
                )
            with self._lock:
                self._lazy[name] = path
                self._snapshots.pop(name, None)
                self._caches.pop(name, None)
            return None
        snapshot = self._load_file(name, path)
        with self._lock:
            self._snapshots[name] = snapshot
            self._caches.pop(name, None)
            self._lazy.pop(name, None)
        return snapshot

    def drop_store(self, name: str) -> None:
        """Forget ``name`` entirely (snapshot, live cache, lazy entry).

        In-flight requests holding the dropped snapshot finish
        unaffected — snapshots are immutable; the name just stops
        resolving for new requests.
        """
        with self._lock:
            known = (
                self._snapshots.pop(name, None) is not None
                or self._lazy.pop(name, None) is not None
            )
            self._caches.pop(name, None)
            self._last_check.pop(name, None)
        if not known:
            raise ServingError(
                "unknown-store", f"no store named {name!r}"
            )

    def serve_directory(
        self, path: PathLike, *, suffix: str = ".rcir"
    ) -> Tuple[str, ...]:
        """Serve every ``*<suffix>`` file under ``path`` lazily.

        Each file registers under its basename-minus-suffix; nothing is
        loaded until a request names the store.  The directory is
        rescanned whenever a lookup misses, so files dropped in after
        registration are picked up without another call.  Returns the
        names registered by this scan.
        """
        directory = os.fspath(path)
        if not os.path.isdir(directory):
            raise ServingError(
                "unknown-store",
                f"{directory!r} is not a directory",
                status=404,
            )
        with self._lock:
            self._directories[directory] = suffix
        return self._scan_directories()

    def _scan_directories(self) -> Tuple[str, ...]:
        """Register any new matching files; returns names added."""
        added = []
        with self._lock:
            directories = dict(self._directories)
        for directory, suffix in directories.items():
            try:
                filenames = sorted(os.listdir(directory))
            except OSError:
                # Vanished directory: already-loaded stores keep
                # serving, the rescan just finds nothing new.
                continue
            for filename in filenames:
                if not filename.endswith(suffix):
                    continue
                name = filename[: len(filename) - len(suffix)]
                with self._lock:
                    if name in self._snapshots or name in self._lazy:
                        continue
                    self._lazy[name] = os.path.join(directory, filename)
                added.append(name)
        return tuple(added)

    def add_cache(self, name: str, cache: CircuitCache) -> StoreSnapshot:
        """Serve a live session :class:`CircuitCache` under ``name``.

        The snapshot is re-cut whenever the cache's mutation counter
        moves (the in-memory analogue of a file-version change), so a
        session that keeps compiling circuits publishes them to the
        serving tier without any explicit hand-off.
        """
        snapshot = self._cut_cache(name, cache)
        with self._lock:
            self._snapshots[name] = snapshot
            self._caches[name] = cache
        return snapshot

    def writeback(
        self, name: str, lineage: DNF, circuit: Circuit
    ) -> bool:
        """Write a refined circuit back into ``name``'s backing cache.

        Only live-cache stores (:meth:`add_cache`) are mutable: the put
        bumps the cache's mutation counter, so the next version probe
        re-cuts the snapshot and every reader sees the refinement — and
        the session that owns the cache persists it on close when it
        was opened with ``persist_circuits=``, carrying the progress
        across processes.  File-backed snapshots are immutable; returns
        ``False`` and the caller keeps the refinement in its own
        overlay.
        """
        cache = self._caches.get(name)
        if cache is None:
            return False
        cache.put(lineage, circuit, exact_only=False)
        return True

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._snapshots) | set(self._lazy)))

    def describe(self) -> Dict[str, Dict[str, object]]:
        return {
            name: self.snapshot(name).describe() for name in self.names()
        }

    # -- snapshots -------------------------------------------------------
    def snapshot(self, name: str) -> StoreSnapshot:
        """The current snapshot of ``name``, hot-reloaded if stale.

        Version probes are throttled by ``reload_check_seconds``; a
        probe that finds the backing file changed (or the live cache
        mutated) reloads and atomically swaps the snapshot.  If the
        backing file has *vanished*, the last good snapshot keeps
        serving — a fleet node outliving its store file is degraded,
        not dead.  Lazily-registered stores (``add_store(lazy=True)``,
        :meth:`serve_directory`) load on their first request here.
        """
        snapshot = self._snapshots.get(name)
        if snapshot is None:
            snapshot = self._load_lazy(name)
        if snapshot is None:
            raise ServingError(
                "unknown-store",
                f"no store named {name!r} (available: "
                f"{', '.join(self.names()) or 'none'})",
            )
        cache = self._caches.get(name)
        if cache is not None:
            if snapshot.version != f"cache:{cache.version}":
                return self._refresh(name)
            return snapshot
        if snapshot.path is None:
            return snapshot
        now = clock.monotonic()
        last = self._last_check.get(name)
        if last is not None and now - last < self.reload_check_seconds:
            return snapshot
        self._last_check[name] = now
        try:
            current = _file_version(snapshot.path)
        except OSError:
            return snapshot
        if current != snapshot.version:
            return self._refresh(name)
        return snapshot

    def _load_lazy(self, name: str) -> Optional[StoreSnapshot]:
        """First-request load of a lazily-registered store (or a file
        that appeared in a served directory since the last scan)."""
        if name not in self._lazy:
            self._scan_directories()
        path = self._lazy.get(name)
        if path is None:
            return None
        snapshot = self._load_file(name, path)
        with self._lock:
            # Another thread may have loaded it while we did; keep the
            # installed snapshot so both threads agree on the version.
            installed = self._snapshots.setdefault(name, snapshot)
            self._lazy.pop(name, None)
        return installed

    def reload(self, name: str) -> StoreSnapshot:
        """Force a reload of ``name`` regardless of version probes."""
        if name not in self._snapshots:
            if self._load_lazy(name) is None:
                raise ServingError(
                    "unknown-store", f"no store named {name!r}"
                )
        return self._refresh(name, force=True)

    def _refresh(self, name: str, *, force: bool = False) -> StoreSnapshot:
        with self._lock:
            snapshot = self._snapshots[name]
            cache = self._caches.get(name)
            if cache is not None:
                if force or snapshot.version != f"cache:{cache.version}":
                    snapshot = self._cut_cache(name, cache)
                    self._snapshots[name] = snapshot
                    self.reloads += 1
                return snapshot
            assert snapshot.path is not None
            try:
                current = _file_version(snapshot.path)
            except OSError:
                return snapshot
            if not force and current == snapshot.version:
                return snapshot  # another thread won the race
            fresh = self._load_file(name, snapshot.path)
            self._snapshots[name] = fresh
            self.reloads += 1
            return fresh

    # -- loading ---------------------------------------------------------
    def _load_file(self, name: str, path: str) -> StoreSnapshot:
        try:
            version = _file_version(path)
        except OSError as exc:
            raise ServingError(
                "unknown-store",
                f"store {name!r} at {path!r} is unreadable: {exc}",
                status=404,
            ) from exc
        cache = CircuitCache()
        cache.load_into(path, self.registry, strict=self.strict)
        return StoreSnapshot(
            name, path, version, cache.snapshot(), intern_snapshot()
        )

    def _cut_cache(self, name: str, cache: CircuitCache) -> StoreSnapshot:
        circuits = cache.snapshot()
        return StoreSnapshot(
            name,
            None,
            f"cache:{circuits.version}",
            circuits,
            intern_snapshot(),
        )

    def __repr__(self) -> str:
        return (
            f"CircuitStoreService({list(self.names())!r}, "
            f"reloads={self.reloads})"
        )
