"""Response cache for repeated point queries against immutable snapshots.

The serving tier's answers are pure functions of ``(store snapshot
version, circuit, canonicalized request arguments)`` — a store snapshot
never mutates, and circuit evaluation is deterministic.  Repeated point
queries (the dominant fleet traffic shape: many clients asking the same
question of the same store) can therefore be answered from a cache
without touching a kernel, **bit-identically** by construction: the
cached object *is* the response computed the first time.

Keys embed the snapshot version, so a store-version bump (hot reload,
live-cache mutation) makes every stale entry unreachable immediately;
:meth:`ResponseCache.purge_store` additionally drops them eagerly when
the :class:`~repro.serving.ServingEngine` observes the bump, so a
reloaded store never pins dead responses in the LRU.

Overrides canonicalization: ``{"a": 0.5, "b": 0.2}`` and
``{"b": 0.2, "a": 0.5}`` are the same scenario, so override dicts fold
into an order-independent hashable form (sorted pair tuples, floats
normalized) before keying.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["ResponseCache", "canonical_overrides"]


def canonical_overrides(
    overrides: Optional[Dict[Hashable, Any]]
) -> Hashable:
    """A hashable, insertion-order-independent key for an overrides
    dict (``None`` — base probabilities — keys as ``None``).

    Variable names may be any hashable, and hashables of different
    types need not be mutually comparable, so entries sort by ``repr``
    of the variable; distribution specs recurse the same way.
    """
    if overrides is None:
        return None
    entries = []
    for variable, spec in overrides.items():
        if isinstance(spec, dict):
            canon: Hashable = tuple(
                sorted(
                    ((repr(value), value, float(p)) for value, p in spec.items()),
                    key=lambda item: item[0],
                )
            )
        else:
            canon = float(spec)
        entries.append((repr(variable), variable, canon))
    return tuple(sorted(entries, key=lambda item: item[0]))


class ResponseCache:
    """A bounded LRU of finished responses, keyed per store version.

    Keys are tuples whose first element is the store name (so
    :meth:`purge_store` can drop a store's entries wholesale) and whose
    remainder pins everything the response depends on: snapshot
    version, op, lineage, canonical arguments.  Values are response
    dicts; callers copy on both put and get so cached responses are
    never aliased by mutation (the engine stamps ``op``/``cached`` onto
    the copies it returns).

    ``max_entries <= 0`` disables the cache: every lookup misses,
    nothing is stored.
    """

    __slots__ = ("max_entries", "_entries", "_lock")

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Hashable, ...], Dict[str, Any]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(
        self, key: Tuple[Hashable, ...]
    ) -> Optional[Dict[str, Any]]:
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                return None
            self._entries.move_to_end(key)
            return dict(response)

    def put(
        self, key: Tuple[Hashable, ...], response: Dict[str, Any]
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = dict(response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def purge_store(self, store: str) -> int:
        """Drop every entry of ``store``; returns how many went."""
        with self._lock:
            stale = [
                key for key in self._entries if key and key[0] == store
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResponseCache({len(self._entries)}/{self.max_entries} "
            "entries)"
        )
