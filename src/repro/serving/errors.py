"""Structured errors for the serving tier.

Every failure a client can observe is a :class:`ServingError` with a
stable machine-readable ``code``, an HTTP status for the ASGI
front-end, and optional ``details`` (e.g. the current store version on
a ``stale-version`` rejection).  Anything else escaping a handler is a
bug and surfaces as ``internal`` / 500.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["ServingError"]

#: code -> HTTP status used when the constructor is not given one.
_DEFAULT_STATUS = {
    "bad-request": 400,
    "unknown-store": 404,
    "unknown-circuit": 404,
    "stale-version": 409,
    "overloaded": 429,
    "quota-exceeded": 429,
    "internal": 500,
    "deadline-exceeded": 504,
}


class ServingError(Exception):
    """A structured, client-visible serving failure."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        status: Optional[int] = None,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = (
            status if status is not None else _DEFAULT_STATUS.get(code, 400)
        )
        self.details: Dict[str, object] = details or {}

    @property
    def retry_after_seconds(self) -> Optional[float]:
        """Seconds the client should back off, when the error carries
        one (``quota-exceeded`` does; the ASGI front-end renders it as
        a ``Retry-After`` header)."""
        value = self.details.get("retry_after_seconds")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return None

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
        }
        if self.details:
            payload["details"] = self.details
        return {"error": payload}

    def __repr__(self) -> str:
        return (
            f"ServingError({self.code!r}, {self.message!r}, "
            f"status={self.status})"
        )
