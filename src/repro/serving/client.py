"""In-process async clients for the serving tier.

Two clients, one vocabulary:

* :class:`ServingClient` wraps a :class:`ServingEngine` directly —
  zero serialization, native Python values in and out.  This is the
  path ``ProbDB.serving()`` hands back for same-process callers.
* :class:`ASGIClient` drives a :class:`ServingApp` through the real
  ASGI protocol (scope/receive/send, JSON bodies) without a socket —
  what an HTTP client would see, minus the network.  Tests and the
  latency benchmark use it to exercise the full wire path.

Both expose the same ``evaluate`` / ``bounds`` / ``gradients`` /
``what_if`` / ``sweep`` / ``top_k`` coroutines plus a generic
``request`` escape hatch, so a test can assert bit-identity between
the direct and the wire path with the same call sites.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List, Optional, Sequence

from .app import ServingApp
from .codec import dnf_to_json, overrides_to_json, value_to_json
from .engine import ServingEngine
from .errors import ServingError

__all__ = ["ASGIClient", "ServingClient"]


def _encode_lineage(lineage: Any) -> Any:
    """DNF objects become wire clause lists; wire lists pass through."""
    if hasattr(lineage, "sorted_clauses"):
        return dnf_to_json(lineage)
    return lineage


class _ClientBase:
    """Shared request builders over an abstract ``request`` coroutine."""

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    def _common(
        self,
        op: str,
        *,
        store: Optional[str],
        tenant: Optional[str],
        deadline_seconds: Optional[float],
        expect_version: Optional[str],
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": op}
        if store is not None:
            payload["store"] = store
        if tenant is not None:
            payload["tenant"] = tenant
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if expect_version is not None:
            payload["expect_version"] = expect_version
        return payload

    async def evaluate(
        self,
        lineage: Any,
        *,
        overrides: Optional[Dict[Hashable, Any]] = None,
        store: Optional[str] = None,
        tenant: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        expect_version: Optional[str] = None,
        epsilon: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload = self._common(
            "evaluate",
            store=store,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            expect_version=expect_version,
        )
        payload["lineage"] = _encode_lineage(lineage)
        if overrides is not None:
            payload["overrides"] = overrides_to_json(overrides)
        if epsilon is not None:
            payload["epsilon"] = epsilon
        return await self.request(payload)

    async def bounds(
        self,
        lineage: Any,
        *,
        overrides: Optional[Dict[Hashable, Any]] = None,
        refine: bool = False,
        target_width: Optional[float] = None,
        store: Optional[str] = None,
        tenant: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        expect_version: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload = self._common(
            "bounds",
            store=store,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            expect_version=expect_version,
        )
        payload["lineage"] = _encode_lineage(lineage)
        if overrides is not None:
            payload["overrides"] = overrides_to_json(overrides)
        if refine:
            payload["refine"] = True
        if target_width is not None:
            payload["target_width"] = target_width
        return await self.request(payload)

    async def gradients(
        self,
        lineage: Any,
        *,
        overrides: Optional[Dict[Hashable, Any]] = None,
        store: Optional[str] = None,
        tenant: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        expect_version: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload = self._common(
            "gradients",
            store=store,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            expect_version=expect_version,
        )
        payload["lineage"] = _encode_lineage(lineage)
        if overrides is not None:
            payload["overrides"] = overrides_to_json(overrides)
        return await self.request(payload)

    async def what_if(
        self,
        lineage: Any,
        variable: Hashable,
        probabilities: Sequence[float],
        *,
        store: Optional[str] = None,
        tenant: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        expect_version: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload = self._common(
            "what_if",
            store=store,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            expect_version=expect_version,
        )
        payload["lineage"] = _encode_lineage(lineage)
        payload["variable"] = value_to_json(variable)
        payload["probabilities"] = [float(p) for p in probabilities]
        return await self.request(payload)

    async def sweep(
        self,
        lineage: Any,
        scenarios: Sequence[Optional[Dict[Hashable, Any]]],
        *,
        kind: str = "values",
        refine: bool = False,
        target_width: Optional[float] = None,
        store: Optional[str] = None,
        tenant: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        expect_version: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload = self._common(
            "sweep",
            store=store,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            expect_version=expect_version,
        )
        payload["lineage"] = _encode_lineage(lineage)
        payload["scenarios"] = [
            overrides_to_json(overrides) for overrides in scenarios
        ]
        payload["kind"] = kind
        if refine:
            payload["refine"] = True
        if target_width is not None:
            payload["target_width"] = target_width
        return await self.request(payload)

    async def top_k(
        self,
        lineages: Sequence[Any],
        k: int,
        *,
        answers: Optional[Sequence[Hashable]] = None,
        overrides: Optional[Dict[Hashable, Any]] = None,
        store: Optional[str] = None,
        tenant: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        expect_version: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload = self._common(
            "top_k",
            store=store,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            expect_version=expect_version,
        )
        payload["lineages"] = [
            _encode_lineage(lineage) for lineage in lineages
        ]
        payload["k"] = k
        if answers is not None:
            payload["answers"] = [
                value_to_json(answer) for answer in answers
            ]
        if overrides is not None:
            payload["overrides"] = overrides_to_json(overrides)
        return await self.request(payload)


class ServingClient(_ClientBase):
    """Direct in-process client: payload dicts straight to ``handle``."""

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return await self.engine.handle(payload)

    async def stats(self) -> Dict[str, Any]:
        return self.engine.stats.summary()  # type: ignore[return-value]

    # -- store catalog ---------------------------------------------------
    async def add_store(
        self, name: str, path: str, *, lazy: bool = False
    ) -> Dict[str, Any]:
        snapshot = self.engine.stores.add_store(name, path, lazy=lazy)
        return {
            "name": name,
            "loaded": snapshot is not None,
            "stores": list(self.engine.stores.names()),
        }

    async def drop_store(self, name: str) -> Dict[str, Any]:
        self.engine.stores.drop_store(name)
        self.engine.responses.purge_store(name)
        return {
            "dropped": name,
            "stores": list(self.engine.stores.names()),
        }

    async def reload_store(self, name: str) -> Dict[str, Any]:
        return dict(self.engine.stores.reload(name).describe())

    async def serve_directory(
        self, path: str, *, suffix: str = ".rcir"
    ) -> Dict[str, Any]:
        added = self.engine.stores.serve_directory(path, suffix=suffix)
        return {
            "added": list(added),
            "stores": list(self.engine.stores.names()),
        }


class ASGIClient(_ClientBase):
    """Drives a :class:`ServingApp` through the ASGI protocol in-process.

    Raises :class:`ServingError` on non-2xx responses, rebuilt from the
    structured error body — so callers see the same exception type on
    both the direct and the wire path.
    """

    def __init__(self, app: ServingApp) -> None:
        self.app = app

    async def http(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One request/response cycle; returns the decoded JSON body."""
        raw = json.dumps(body).encode("utf-8") if body is not None else b""
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("ascii"),
            "query_string": b"",
            "headers": [(b"content-type", b"application/json")],
        }
        received = False

        async def receive() -> Dict[str, Any]:
            nonlocal received
            if received:  # pragma: no cover - disconnect sentinel
                return {"type": "http.disconnect"}
            received = True
            return {"type": "http.request", "body": raw, "more_body": False}

        messages: List[Dict[str, Any]] = []

        async def send(message: Dict[str, Any]) -> None:
            messages.append(message)

        await self.app(scope, receive, send)
        status = 500
        chunks = []
        for message in messages:
            if message["type"] == "http.response.start":
                status = message["status"]
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
        payload = json.loads(b"".join(chunks) or b"{}")
        if status >= 300:
            error = payload.get("error", {})
            raise ServingError(
                error.get("code", "internal"),
                error.get("message", f"HTTP {status}"),
                status=status,
                details=error.get("details"),
            )
        return payload

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload["op"]
        body = {
            key: value for key, value in payload.items() if key != "op"
        }
        return await self.http("POST", f"/v1/{op}", body)

    async def stats(self) -> Dict[str, Any]:
        return await self.http("GET", "/v1/stats")

    async def healthz(self) -> Dict[str, Any]:
        return await self.http("GET", "/healthz")

    async def stores(self) -> Dict[str, Any]:
        return await self.http("GET", "/v1/stores")

    # -- store catalog ---------------------------------------------------
    async def add_store(
        self, name: str, path: str, *, lazy: bool = False
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"name": name, "path": path}
        if lazy:
            body["lazy"] = True
        return await self.http("POST", "/v1/stores/add", body)

    async def drop_store(self, name: str) -> Dict[str, Any]:
        return await self.http("POST", "/v1/stores/drop", {"name": name})

    async def reload_store(self, name: str) -> Dict[str, Any]:
        return await self.http("POST", "/v1/stores/reload", {"name": name})

    async def serve_directory(
        self, path: str, *, suffix: str = ".rcir"
    ) -> Dict[str, Any]:
        return await self.http(
            "POST",
            "/v1/stores/serve_directory",
            {"path": path, "suffix": suffix},
        )
