"""Shared-nothing serving fleet: one serving process per worker.

A single :class:`~repro.serving.ServingEngine` is bounded by one
Python process.  :class:`ServingFleet` scales the tier *out*: it forks
``workers`` processes, each of which loads the **same persisted store
files** into its own :class:`~repro.serving.CircuitStoreService`,
builds its own :class:`ServingEngine` (response cache, quotas,
micro-batcher, optional cold-compile
:class:`~repro.engine.ConfidenceEngine`), and serves its own HTTP
socket.  Nothing is shared after start-up — no locks, no IPC on the
request path — which is exactly the deployment shape the store codec
was built for: stores are name-based and immutable, so N readers are
as safe as one.

Intern-snapshot shipping is reused from :mod:`repro.engine_parallel`:
each worker replays the coordinator's intern-table snapshot before
touching a store (via
:func:`~repro.engine_parallel.build_worker_engine` when a cold-compile
engine is configured), so id-encoded clauses and dense kernel ids mean
the same thing in every process.

HTTP: each worker binds an ephemeral port and reports it to the
coordinator over a pipe.  The server is uvicorn when installed and
requested (``http_server="uvicorn"``/``"auto"``), otherwise a small
stdlib asyncio HTTP/1.1 bridge over the same ASGI app — keep-alive,
content-length framing, nothing fancy — so the fleet, like the rest of
the library, works from the standard library alone.

Routing: :class:`FleetClient` holds one persistent connection per
worker and routes by **lineage affinity** (stable CRC32 of the wire
lineage), so repeated point queries for the same lineage land on the
same worker's warm :class:`~repro.serving.ResponseCache`; requests
without a lineage round-robin.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import threading
import time
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.variables import (
    InternSnapshot,
    VariableRegistry,
    install_intern_snapshot,
    intern_snapshot,
)
from ..engine import EngineConfig
from .app import ServingApp
from .client import _ClientBase
from .engine import ServingConfig, ServingEngine
from .errors import ServingError
from .store import CircuitStoreService

__all__ = ["FleetClient", "FleetConfig", "ServingFleet"]

PathLike = Union[str, "os.PathLike[str]"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

@dataclass(frozen=True)
class FleetConfig:
    """Deployment shape of one :class:`ServingFleet`."""

    #: Worker processes (one serving engine + HTTP socket each).
    workers: int = 2
    host: str = "127.0.0.1"
    #: Per-worker serving knobs (response cache, quotas, batching...).
    serving: ServingConfig = field(default_factory=ServingConfig)
    #: Cold-compile engine built in every worker via
    #: ``engine_parallel.build_worker_engine`` (intern snapshot
    #: replayed first); ``None`` serves stores only — cold lineages
    #: become ``unknown-circuit`` errors.
    engine: Optional[EngineConfig] = field(default_factory=EngineConfig)
    #: Forwarded to each worker's CircuitStoreService.
    strict: bool = False
    reload_check_seconds: float = 0.05
    #: ``"auto"`` uses uvicorn when importable, else the stdlib bridge;
    #: ``"uvicorn"`` requires it; ``"stdlib"`` never imports it.
    http_server: str = "auto"
    #: Seconds to wait for every worker to report its bound port.
    startup_timeout_seconds: float = 30.0
    #: How many crashed workers the coordinator will respawn over the
    #: fleet's lifetime (same store set, fresh intern snapshot).  ``0``
    #: restores the reap-only behaviour.
    restart_budget: int = 2
    #: Supervisor poll interval for dead workers.
    restart_check_seconds: float = 0.25


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _fleet_worker_main(
    conn: "multiprocessing.connection.Connection",
    host: str,
    snapshot: InternSnapshot,
    registry: VariableRegistry,
    stores: Dict[str, str],
    serving_config: ServingConfig,
    engine_config: Optional[EngineConfig],
    strict: bool,
    reload_check_seconds: float,
    http_server: str,
) -> None:
    """Entry point of one fleet worker process."""
    # The coordinator owns shutdown (a pipe message / pipe close); a
    # terminal Ctrl-C must not race it by killing workers first.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        if engine_config is not None:
            # Deferred import: repro.serving must stay importable
            # without dragging the full engine stack in.
            from ..engine_parallel import build_worker_engine

            engine = build_worker_engine(snapshot, registry, engine_config)
        else:
            install_intern_snapshot(snapshot)
            engine = None
        service = CircuitStoreService(
            registry,
            stores,
            strict=strict,
            reload_check_seconds=reload_check_seconds,
        )
        serving = ServingEngine(service, engine, serving_config)
        app = ServingApp(serving)
        asyncio.run(_worker_serve(app, conn, host, http_server))
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


async def _worker_serve(
    app: ServingApp,
    conn: "multiprocessing.connection.Connection",
    host: str,
    http_server: str,
) -> None:
    """Bind an ephemeral port, report it, serve until the pipe says stop."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    # Any pipe traffic — a stop message or the coordinator closing its
    # end (crash included) — wakes the worker for shutdown.
    loop.add_reader(conn.fileno(), stop.set)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, 0))
    port = sock.getsockname()[1]

    use_uvicorn = False
    if http_server in ("auto", "uvicorn"):
        try:
            import uvicorn  # noqa: F401

            use_uvicorn = True
        except ImportError:
            if http_server == "uvicorn":
                raise RuntimeError(
                    "http_server='uvicorn' but uvicorn is not installed; "
                    "install the repro[serve] extra or use 'stdlib'"
                )
    try:
        if use_uvicorn:
            import uvicorn

            sock.listen(128)
            config = uvicorn.Config(
                app, log_level="warning", lifespan="on"
            )
            server = uvicorn.Server(config)
            conn.send(("ready", port))
            task = asyncio.ensure_future(server.serve(sockets=[sock]))
            await stop.wait()
            server.should_exit = True
            await task
        else:
            bridge = _StdlibBridge(app)
            server = await asyncio.start_server(bridge.handle, sock=sock)
            conn.send(("ready", port))
            await stop.wait()
            server.close()
            await server.wait_closed()
            await bridge.drain()
            await app.engine.close()
    finally:
        loop.remove_reader(conn.fileno())


class _StdlibBridge:
    """Minimal HTTP/1.1 → ASGI bridge for one :class:`ServingApp`.

    Supports exactly what the serving wire protocol needs: JSON bodies
    framed by ``Content-Length``, keep-alive connections, one request
    in flight per connection.  Chunked uploads are rejected with 411.
    """

    def __init__(self, app: ServingApp) -> None:
        self.app = app
        self._writers: set = set()
        self._handlers: set = set()

    async def drain(self) -> None:
        """Close every live connection so handlers finish on their own.

        Cancelling handler tasks at loop teardown instead would make
        Python 3.11's ``StreamReaderProtocol`` log spurious
        ``CancelledError`` tracebacks (its done-callback predates the
        cancelled-task guard); feeding EOF lets each keep-alive loop
        exit normally.
        """
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )

    async def handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        self._handlers.add(asyncio.current_task())
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, headers, payload = await self._dispatch(
                    method, path, body
                )
                await self._write_response(
                    writer, status, headers, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writers.discard(writer)
            self._handlers.discard(asyncio.current_task())

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            # The bridge frames bodies by Content-Length only; a
            # chunked upload gets an empty body (the app rejects it as
            # bad-request) and the connection closes to resynchronise.
            return method, target, b"", False
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        keep_alive = (
            version.upper() != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        path = target.split("?", 1)[0]
        return method, path, body, keep_alive

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, List[Tuple[bytes, bytes]], bytes]:
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": b"",
            "headers": [(b"content-type", b"application/json")],
        }
        sent = False

        async def receive() -> Dict[str, Any]:
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {
                "type": "http.request",
                "body": body,
                "more_body": False,
            }

        messages: List[Dict[str, Any]] = []

        async def send(message: Dict[str, Any]) -> None:
            messages.append(message)

        await self.app(scope, receive, send)
        status = 500
        headers: List[Tuple[bytes, bytes]] = []
        chunks: List[bytes] = []
        for message in messages:
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
        return status, headers, b"".join(chunks)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: List[Tuple[bytes, bytes]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "Status")
        lines = [f"HTTP/1.1 {status} {reason}".encode("latin-1")]
        has_length = False
        for name, value in headers:
            if name.lower() == b"content-length":
                has_length = True
            lines.append(name + b": " + value)
        if not has_length:
            lines.append(b"content-length: " + str(len(body)).encode())
        lines.append(
            b"connection: keep-alive" if keep_alive else b"connection: close"
        )
        writer.write(b"\r\n".join(lines) + b"\r\n\r\n" + body)
        await writer.drain()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ServingFleet:
    """Spawns and supervises a shared-nothing fleet of serving workers.

    Usage::

        fleet = ServingFleet(registry, {"main": "store.bin"})
        addresses = fleet.start()          # [(host, port), ...]
        client = FleetClient(addresses)
        ...
        await client.close()
        fleet.close()

    Workers are daemonic; an abandoned fleet dies with its coordinator.
    """

    def __init__(
        self,
        registry: VariableRegistry,
        stores: Mapping[str, PathLike],
        *,
        config: Optional[FleetConfig] = None,
    ) -> None:
        self.registry = registry
        self.stores = {
            name: os.fspath(path) for name, path in stores.items()
        }
        self.config = config or FleetConfig()
        if self.config.workers < 1:
            raise ValueError(
                f"a fleet needs at least 1 worker, got "
                f"{self.config.workers}"
            )
        self.addresses: List[Tuple[str, int]] = []
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._pipes: List["multiprocessing.connection.Connection"] = []
        #: Crashed workers respawned so far (bounded by
        #: ``config.restart_budget``).
        self.restarts = 0
        self._closing = threading.Event()
        self._supervisor: Optional[threading.Thread] = None

    def _spawn(
        self, ctx, snapshot: InternSnapshot
    ) -> Tuple[
        "multiprocessing.process.BaseProcess",
        "multiprocessing.connection.Connection",
    ]:
        cfg = self.config
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_fleet_worker_main,
            args=(
                child_conn,
                cfg.host,
                snapshot,
                self.registry,
                self.stores,
                cfg.serving,
                cfg.engine,
                cfg.strict,
                cfg.reload_check_seconds,
                cfg.http_server,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def _context(self):
        # fork (where available) shares the parent's pages — intern
        # tables, registry, loaded modules — making worker start-up
        # cheap; spawn replays the shipped snapshot for real.  Same
        # policy as engine_parallel's process pools.
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context("spawn")  # pragma: no cover

    def start(self) -> List[Tuple[str, int]]:
        """Spawn the workers; returns their ``(host, port)`` addresses."""
        if self._processes:
            return list(self.addresses)
        ctx = self._context()
        snapshot = intern_snapshot()
        cfg = self.config
        for _ in range(cfg.workers):
            process, parent_conn = self._spawn(ctx, snapshot)
            self._processes.append(process)
            self._pipes.append(parent_conn)
        # Real wall time on purpose: worker start-up is OS work, not
        # serving-tier logic, so the fake test clock must not govern it.
        deadline = time.monotonic() + cfg.startup_timeout_seconds
        for index, conn in enumerate(self._pipes):
            remaining = max(0.0, deadline - time.monotonic())
            if not conn.poll(remaining):
                self.close()
                raise RuntimeError(
                    f"fleet worker {index} did not report a port within "
                    f"{cfg.startup_timeout_seconds:.1f}s"
                )
            kind, value = conn.recv()
            if kind == "error":
                self.close()
                raise RuntimeError(
                    f"fleet worker {index} failed to start:\n{value}"
                )
            self.addresses.append((cfg.host, int(value)))
        if cfg.restart_budget > 0:
            self._closing.clear()
            self._supervisor = threading.Thread(
                target=self._supervise, daemon=True,
                name="fleet-supervisor",
            )
            self._supervisor.start()
        return list(self.addresses)

    # -- crash supervision ----------------------------------------------
    def _supervise(self) -> None:
        """Respawn crashed workers until closed or out of budget.

        The coordinator historically only *reaped*: a crashed worker
        left a dead address in the fleet forever.  This loop polls for
        dead processes and restarts each with the same store set — a
        fresh intern snapshot (the tables are append-only, so the new
        snapshot is a superset of the original), a fresh port — bounded
        by ``restart_budget`` so a worker crashing deterministically on
        startup cannot fork-bomb the host.
        """
        check = max(0.01, self.config.restart_check_seconds)
        while not self._closing.wait(check):
            for index, process in enumerate(list(self._processes)):
                if process.is_alive() or self._closing.is_set():
                    continue
                if self.restarts >= self.config.restart_budget:
                    return
                self._respawn(index)

    def _respawn(self, index: int) -> None:
        process = self._processes[index]
        process.join(0.1)
        try:
            self._pipes[index].close()
        except OSError:
            pass
        new_process, conn = self._spawn(self._context(), intern_snapshot())
        self.restarts += 1
        deadline = time.monotonic() + self.config.startup_timeout_seconds
        while not self._closing.is_set():
            if conn.poll(min(0.1, max(0.0, deadline - time.monotonic()))):
                kind, value = conn.recv()
                if kind == "ready":
                    self._processes[index] = new_process
                    self._pipes[index] = conn
                    self.addresses[index] = (self.config.host, int(value))
                    return
                break  # startup error: give up on this respawn
            if time.monotonic() >= deadline:
                break
        # Failed or closing: don't leave a half-started orphan behind.
        try:
            conn.close()
        except OSError:
            pass
        if new_process.is_alive():
            new_process.terminate()
        new_process.join(1.0)

    @property
    def pids(self) -> List[int]:
        """Live worker process ids, in worker order (for crash tests)."""
        return [process.pid or 0 for process in self._processes]

    def close(self, *, timeout_seconds: float = 5.0) -> None:
        """Stop every worker (graceful pipe signal, then terminate)."""
        self._closing.set()
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.join(timeout_seconds)
            self._supervisor = None
        for conn in self._pipes:
            try:
                conn.send(("stop", None))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout_seconds
        for process in self._processes:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:
                pass
        self._processes.clear()
        self._pipes.clear()
        self.addresses.clear()

    @property
    def alive(self) -> int:
        """How many workers are currently running."""
        return sum(1 for p in self._processes if p.is_alive())

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingFleet({len(self.stores)} stores, "
            f"{self.alive}/{self.config.workers} workers up)"
        )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class FleetClient(_ClientBase):
    """Async client over real sockets, one per fleet worker.

    Same request vocabulary as :class:`~repro.serving.ServingClient` /
    :class:`~repro.serving.ASGIClient` (the ``_ClientBase`` builders),
    plus routing: requests that carry a lineage hash it (stable CRC32
    of the wire form — ``hash()`` is salted per process, so it cannot
    route) to pick a worker, which keeps repeated point queries on the
    same worker's warm response cache; everything else round-robins.

    Connections are persistent (keep-alive) and serialized per worker
    with a lock; a dropped connection is re-dialed once per request.
    """

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        *,
        affinity: bool = True,
        retry_quota: bool = False,
        sleep=None,
    ) -> None:
        if not addresses:
            raise ValueError("FleetClient needs at least one address")
        self.addresses = [(host, int(port)) for host, port in addresses]
        self.affinity = affinity
        #: Opt-in: honor ``Retry-After`` on a 429 quota rejection with
        #: exactly one retry instead of surfacing immediately.
        self.retry_quota = retry_quota
        #: Injectable async sleep (tests pass a fake-clock recorder).
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._connections: List[
            Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = [None] * len(self.addresses)
        self._locks: List[Optional[asyncio.Lock]] = [None] * len(
            self.addresses
        )
        self._rr = 0

    # -- routing ---------------------------------------------------------
    def worker_for(self, payload: Mapping[str, Any]) -> int:
        """Which worker a payload routes to (exposed for tests)."""
        lineage = payload.get("lineage")
        if lineage is None:
            lineage = payload.get("lineages")
        if self.affinity and lineage is not None:
            wire = json.dumps(lineage, sort_keys=True, default=str)
            digest = zlib.crc32(wire.encode("utf-8"))
            return digest % len(self.addresses)
        self._rr = (self._rr + 1) % len(self.addresses)
        return self._rr

    # -- transport -------------------------------------------------------
    async def _connect(
        self, worker: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        connection = self._connections[worker]
        if connection is not None and not connection[1].is_closing():
            return connection
        host, port = self.addresses[worker]
        reader, writer = await asyncio.open_connection(host, port)
        self._connections[worker] = (reader, writer)
        return reader, writer

    def _lock(self, worker: int) -> asyncio.Lock:
        lock = self._locks[worker]
        if lock is None:
            lock = asyncio.Lock()
            self._locks[worker] = lock
        return lock

    async def http(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        worker: int = 0,
    ) -> Dict[str, Any]:
        """One request/response against ``worker``; decoded JSON body."""
        raw = json.dumps(body).encode("utf-8") if body is not None else b""
        host, port = self.addresses[worker]
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"host: {host}:{port}\r\n"
            "content-type: application/json\r\n"
            f"content-length: {len(raw)}\r\n"
            "connection: keep-alive\r\n\r\n"
        ).encode("latin-1") + raw
        async with self._lock(worker):
            for attempt in (0, 1):
                reader, writer = await self._connect(worker)
                try:
                    writer.write(request)
                    await writer.drain()
                    status, payload = await self._read_response(reader)
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                    OSError,
                ):
                    # Stale keep-alive (worker restarted, idle timeout):
                    # drop the connection and re-dial exactly once.
                    self._connections[worker] = None
                    writer.close()
                    if attempt:
                        raise
        if status >= 300:
            error = payload.get("error", {})
            raise ServingError(
                error.get("code", "internal"),
                error.get("message", f"HTTP {status}"),
                status=status,
                details=error.get("details"),
            )
        return payload

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Dict[str, Any]]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("connection closed by worker")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return status, json.loads(body or b"{}")

    # -- request vocabulary ---------------------------------------------
    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload["op"]
        body = {
            key: value for key, value in payload.items() if key != "op"
        }
        worker = self.worker_for(payload)
        try:
            return await self.http("POST", f"/v1/{op}", body, worker=worker)
        except ServingError as exc:
            delay = exc.retry_after_seconds
            if not (
                self.retry_quota and exc.status == 429 and delay is not None
            ):
                raise
            # One Retry-After-guided retry; a second 429 surfaces.
            await self._sleep(float(delay))
            return await self.http("POST", f"/v1/{op}", body, worker=worker)

    async def stats(self) -> List[Dict[str, Any]]:
        """Per-worker ``/v1/stats`` summaries, in worker order."""
        return [
            await self.http("GET", "/v1/stats", worker=index)
            for index in range(len(self.addresses))
        ]

    async def healthz(self) -> List[Dict[str, Any]]:
        return [
            await self.http("GET", "/healthz", worker=index)
            for index in range(len(self.addresses))
        ]

    async def aggregate_stats(self) -> Dict[str, float]:
        """Fleet-wide counters summed across workers."""
        totals = {
            "requests_total": 0.0,
            "response_hits": 0.0,
            "response_misses": 0.0,
            "shed": 0.0,
            "quota_rejections": 0.0,
            "batches": 0.0,
            "batched_rows": 0.0,
        }
        summaries = await self.stats()
        for summary in summaries:
            for key in totals:
                totals[key] += float(summary.get(key, 0))
        hits, misses = totals["response_hits"], totals["response_misses"]
        totals["response_hit_ratio"] = (
            hits / (hits + misses) if hits + misses else 0.0
        )
        totals["workers"] = float(len(summaries))
        return totals

    # -- catalog ---------------------------------------------------------
    async def add_store(
        self, name: str, path: str, *, lazy: bool = False
    ) -> List[Dict[str, Any]]:
        """Register a store on **every** worker (the catalog is
        replicated, not partitioned)."""
        body: Dict[str, Any] = {"name": name, "path": path}
        if lazy:
            body["lazy"] = True
        return [
            await self.http(
                "POST", "/v1/stores/add", body, worker=index
            )
            for index in range(len(self.addresses))
        ]

    async def drop_store(self, name: str) -> List[Dict[str, Any]]:
        return [
            await self.http(
                "POST", "/v1/stores/drop", {"name": name}, worker=index
            )
            for index in range(len(self.addresses))
        ]

    async def close(self) -> None:
        for connection in self._connections:
            if connection is not None:
                connection[1].close()
        self._connections = [None] * len(self.addresses)

    def __repr__(self) -> str:
        live = sum(
            1
            for connection in self._connections
            if connection is not None and not connection[1].is_closing()
        )
        return (
            f"FleetClient({len(self.addresses)} workers, "
            f"{live} live connections)"
        )
