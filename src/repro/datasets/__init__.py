"""Workload generators for the paper's evaluation (Section VII).

* :mod:`~repro.datasets.tpch` — tuple-independent probabilistic TPC-H;
* :mod:`~repro.datasets.tpch_queries` — the paper's query suite
  (hierarchical, IQ, and hard queries);
* :mod:`~repro.datasets.graphs` — random graphs and motif queries
  (triangle, path2, path3, separation);
* :mod:`~repro.datasets.social` — the karate-club and dolphins-like
  social networks.
"""

from .graphs import (
    GRAPH_QUERIES,
    ProbabilisticGraph,
    graph_from_edges,
    path2_dnf,
    path3_dnf,
    random_graph,
    separation2_dnf,
    triangle_dnf,
)
from .social import (
    SOCIAL_NETWORKS,
    dolphins_like_network,
    karate_club_network,
)
from .tpch import BASE_CARDINALITIES, TPCHConfig, generate_tpch
from .tpch_queries import (
    ALL_QUERIES,
    HARD_QUERIES,
    HIERARCHICAL_QUERIES,
    IQ_QUERIES,
    make_query,
)

__all__ = [
    "GRAPH_QUERIES",
    "ProbabilisticGraph",
    "graph_from_edges",
    "path2_dnf",
    "path3_dnf",
    "random_graph",
    "separation2_dnf",
    "triangle_dnf",
    "SOCIAL_NETWORKS",
    "dolphins_like_network",
    "karate_club_network",
    "BASE_CARDINALITIES",
    "TPCHConfig",
    "generate_tpch",
    "ALL_QUERIES",
    "HARD_QUERIES",
    "HIERARCHICAL_QUERIES",
    "IQ_QUERIES",
    "make_query",
]
