"""The paper's TPC-H query suite (Section VII.A), as conjunctive queries.

The paper evaluates "modified versions of the TPC-H queries without
aggregations but with confidence computation", in three groups:

* **six tractable (hierarchical) queries** — "1, 15, B1, B6, B16, B17";
  two are selections on the large ``lineitem`` table, the others joins of
  two large tables (lineitem with supplier / orders / part);
* **three tractable queries with inequality joins** — "IQ B1, IQ B4,
  IQ 6" in the style of the IQ queries of Example 6.7;
* **four #P-hard queries** — B2 (part ⋈ supplier ⋈ partsupp ⋈ nation ⋈
  region), B9 (part ⋈ supplier ⋈ lineitem ⋈ partsupp ⋈ orders ⋈ nation),
  B20 (supplier ⋈ nation ⋈ partsupp ⋈ part), B21 (supplier ⋈ lineitem ⋈
  orders ⋈ nation).

The exact selection constants of the original study are not published; the
constants here are tuned so that each query returns non-trivial lineage on
the scaled-down generator of :mod:`repro.datasets.tpch` while keeping the
paper's join structure attribute-for-attribute.  Queries whose name starts
with "B" are Boolean.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..db.cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var

__all__ = [
    "HIERARCHICAL_QUERIES",
    "IQ_QUERIES",
    "HARD_QUERIES",
    "ALL_QUERIES",
    "make_query",
]


# Shared variable pool (fresh objects per query keep queries independent).
def _lineitem(prefix: str = "L") -> SubGoal:
    return SubGoal(
        "lineitem",
        [
            Var(f"{prefix}_O"),
            Var(f"{prefix}_P"),
            Var(f"{prefix}_S"),
            Var(f"{prefix}_Q"),
            Var(f"{prefix}_E"),
            Var(f"{prefix}_D"),
            Var(f"{prefix}_DI"),
            Var(f"{prefix}_RF"),
            Var(f"{prefix}_LS"),
        ],
    )


def query_1() -> ConjunctiveQuery:
    """Q1 analogue: pricing-summary selection on lineitem, grouped by
    returnflag/linestatus (aggregations dropped, heads kept)."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[Var("L_RF"), Var("L_LS")],
        subgoals=[lineitem],
        inequalities=[Inequality(Var("L_D"), "<=", Const(2200))],
        name="1",
    )


def query_15() -> ConjunctiveQuery:
    """Q15 analogue: top-supplier view — supplier ⋈ lineitem on suppkey,
    shipdate window, head = suppkey."""
    return ConjunctiveQuery(
        head=[Var("S")],
        subgoals=[
            SubGoal(
                "supplier", [Var("S"), Var("SN"), Var("N"), Var("AB")]
            ),
            _lineitem(),
        ],
        inequalities=[
            Inequality(Var("L_S"), "<=", Const(10**9)),  # no-op guard
            Inequality(Var("L_D"), ">=", Const(1200)),
            Inequality(Var("L_D"), "<=", Const(1400)),
        ],
        name="15",
    )


def query_b1() -> ConjunctiveQuery:
    """B1: Boolean lineitem ⋈ orders (orderkey) with a shipdate filter."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            lineitem,
            SubGoal(
                "orders", [Var("L_O"), Var("C"), Var("T"), Var("DT")]
            ),
        ],
        inequalities=[Inequality(Var("L_D"), "<=", Const(700))],
        name="B1",
    )


def query_b6() -> ConjunctiveQuery:
    """B6: Boolean forecast-revenue selection on lineitem."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[],
        subgoals=[lineitem],
        inequalities=[
            Inequality(Var("L_D"), ">=", Const(400)),
            Inequality(Var("L_D"), "<=", Const(800)),
            Inequality(Var("L_Q"), "<", Const(24)),
            Inequality(Var("L_DI"), ">=", Const(0.02)),
            Inequality(Var("L_DI"), "<=", Const(0.08)),
        ],
        name="B6",
    )


def query_b16() -> ConjunctiveQuery:
    """B16: Boolean part ⋈ partsupp (partkey) with a size filter."""
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            SubGoal(
                "part",
                [Var("P"), Var("NA"), Var("BR"), Var("SZ"), Var("RP")],
            ),
            SubGoal("partsupp", [Var("P"), Var("S"), Var("CO")]),
        ],
        inequalities=[Inequality(Var("SZ"), ">=", Const(30))],
        name="B16",
    )


def query_b17() -> ConjunctiveQuery:
    """B17: Boolean lineitem ⋈ part (partkey), small-quantity filter."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            lineitem,
            SubGoal(
                "part",
                [Var("L_P"), Var("NA"), Var("BR"), Var("SZ"), Var("RP")],
            ),
        ],
        inequalities=[Inequality(Var("L_Q"), "<", Const(10))],
        name="B17",
    )


def query_iq_b1() -> ConjunctiveQuery:
    """IQ B1: supplier/customer account-balance comparison
    (the ``R(E,F), S(B,C), E < C`` shape)."""
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            SubGoal(
                "supplier", [Var("S"), Var("SN"), Var("N"), Var("AB")]
            ),
            SubGoal(
                "customer", [Var("C"), Var("CN"), Var("NC"), Var("AC")]
            ),
        ],
        inequalities=[Inequality(Var("AB"), "<", Var("AC"))],
        name="IQ B1",
    )


def query_iq_b4() -> ConjunctiveQuery:
    """IQ B4: a three-relation inequality chain
    (the ``R(E,F), T(D), T'(G,H), E < D < H`` shape of Example 6.7)."""
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            SubGoal(
                "supplier", [Var("S"), Var("SN"), Var("N"), Var("AB")]
            ),
            SubGoal(
                "customer", [Var("C"), Var("CN"), Var("NC"), Var("AC")]
            ),
            SubGoal(
                "orders", [Var("O"), Var("CO"), Var("T"), Var("DT")]
            ),
        ],
        inequalities=[
            Inequality(Var("AB"), "<", Var("AC")),
            Inequality(Var("AC"), "<", Var("DT")),
        ],
        name="IQ B4",
    )


def query_iq_6() -> ConjunctiveQuery:
    """IQ 6: lineitem/orders price comparison with a shipdate window."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            lineitem,
            SubGoal(
                "orders", [Var("O"), Var("CU"), Var("T"), Var("DT")]
            ),
        ],
        inequalities=[
            Inequality(Var("L_E"), "<", Var("T")),
            Inequality(Var("L_D"), "<=", Const(500)),
            Inequality(Var("T"), "<=", Const(120000)),
        ],
        name="IQ 6",
    )


def query_b2() -> ConjunctiveQuery:
    """B2: part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region (hard)."""
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            SubGoal(
                "part",
                [Var("P"), Var("NA"), Var("BR"), Var("SZ"), Var("RP")],
            ),
            SubGoal("partsupp", [Var("P"), Var("S"), Var("CO")]),
            SubGoal(
                "supplier", [Var("S"), Var("SN"), Var("N"), Var("AB")]
            ),
            SubGoal("nation", [Var("N"), Var("NN"), Var("R")]),
            SubGoal("region", [Var("R"), Const("EUROPE")]),
        ],
        inequalities=[Inequality(Var("SZ"), ">=", Const(10))],
        name="B2",
    )


def query_b9() -> ConjunctiveQuery:
    """B9: part ⋈ supplier ⋈ lineitem ⋈ partsupp ⋈ orders ⋈ nation
    (the paper's largest hard query)."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            lineitem,
            SubGoal(
                "part",
                [Var("L_P"), Var("NA"), Var("BR"), Var("SZ"), Var("RP")],
            ),
            SubGoal(
                "supplier", [Var("L_S"), Var("SN"), Var("N"), Var("AB")]
            ),
            SubGoal("partsupp", [Var("L_P"), Var("L_S"), Var("CO")]),
            SubGoal(
                "orders", [Var("L_O"), Var("CU"), Var("T"), Var("DT")]
            ),
            SubGoal("nation", [Var("N"), Var("NN"), Var("R")]),
        ],
        name="B9",
    )


def query_b20() -> ConjunctiveQuery:
    """B20: supplier ⋈ nation ⋈ partsupp ⋈ part (hard; single-nation
    selection, the case the paper highlights for fast convergence)."""
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            SubGoal(
                "supplier", [Var("S"), Var("SN"), Var("N"), Var("AB")]
            ),
            SubGoal("nation", [Var("N"), Const("ALGERIA"), Var("R")]),
            SubGoal("partsupp", [Var("P"), Var("S"), Var("CO")]),
            SubGoal(
                "part",
                [Var("P"), Var("NA"), Var("BR"), Var("SZ"), Var("RP")],
            ),
        ],
        inequalities=[Inequality(Var("SZ"), "<", Const(30))],
        name="B20",
    )


def query_b21() -> ConjunctiveQuery:
    """B21: supplier ⋈ lineitem ⋈ orders ⋈ nation (hard; single-nation
    selection)."""
    lineitem = _lineitem()
    return ConjunctiveQuery(
        head=[],
        subgoals=[
            SubGoal(
                "supplier", [Var("L_S"), Var("SN"), Var("N"), Var("AB")]
            ),
            lineitem,
            SubGoal(
                "orders", [Var("L_O"), Var("CU"), Var("T"), Var("DT")]
            ),
            SubGoal("nation", [Var("N"), Const("ARGENTINA"), Var("R")]),
        ],
        name="B21",
    )


HIERARCHICAL_QUERIES: Dict[str, Callable[[], ConjunctiveQuery]] = {
    "1": query_1,
    "15": query_15,
    "B1": query_b1,
    "B6": query_b6,
    "B16": query_b16,
    "B17": query_b17,
}

IQ_QUERIES: Dict[str, Callable[[], ConjunctiveQuery]] = {
    "IQ B1": query_iq_b1,
    "IQ B4": query_iq_b4,
    "IQ 6": query_iq_6,
}

HARD_QUERIES: Dict[str, Callable[[], ConjunctiveQuery]] = {
    "B2": query_b2,
    "B9": query_b9,
    "B20": query_b20,
    "B21": query_b21,
}

ALL_QUERIES: Dict[str, Callable[[], ConjunctiveQuery]] = {
    **HIERARCHICAL_QUERIES,
    **IQ_QUERIES,
    **HARD_QUERIES,
}


def make_query(name: str) -> ConjunctiveQuery:
    """Instantiate a benchmark query by its paper name."""
    try:
        return ALL_QUERIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; available: {sorted(ALL_QUERIES)}"
        ) from None
