"""The paper's social networks (Section VII.B).

Two datasets:

* **Zachary's karate club** [Zachary 1977] — the classic 34-node,
  78-edge friendship network, taken verbatim from
  :func:`networkx.karate_club_graph` (identical to the paper's).

* **A dolphins-like network** — the paper uses Lusseau's 62-node,
  159-edge dolphin social network, which is not distributable offline.
  As documented in DESIGN.md, we substitute a *fixed-seed synthetic
  network with the same shape*: 62 nodes, exactly 159 edges, two
  communities (the real network famously splits in two), built with a
  stochastic block model and patched to the exact edge count.  What drives
  the paper's Fig. 9 is the motif structure and the edge-probability
  profile, both of which are preserved.

Edge probabilities model "degree of belief in friendship": drawn from a
seeded uniform range — high confidence (``(0.5, 0.99)``) for the dolphin
network ("very credible for dolphins"), a wider range for the karate club
("varying degrees of friendship").
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Tuple

import networkx as nx

from .graphs import ProbabilisticGraph, graph_from_edges

__all__ = [
    "karate_club_network",
    "dolphins_like_network",
    "SOCIAL_NETWORKS",
]


def _attach_probabilities(
    edges: List[Tuple[int, int]],
    probability_range: Tuple[float, float],
    seed: int,
) -> List[Tuple[int, int, float]]:
    rng = random.Random(seed)
    low, high = probability_range
    return [(u, v, rng.uniform(low, high)) for (u, v) in sorted(edges)]


def karate_club_network(
    *,
    probability_range: Tuple[float, float] = (0.3, 0.95),
    seed: int = 34,
) -> ProbabilisticGraph:
    """Zachary's karate club with seeded per-edge belief probabilities."""
    graph = nx.karate_club_graph()
    edges = [(min(u, v), max(u, v)) for u, v in graph.edges()]
    return graph_from_edges(
        _attach_probabilities(edges, probability_range, seed)
    )


def dolphins_like_network(
    *,
    probability_range: Tuple[float, float] = (0.5, 0.99),
    seed: int = 62,
) -> ProbabilisticGraph:
    """A 62-node / 159-edge two-community stand-in for the dolphin network.

    Built deterministically: a stochastic block model with two communities
    of 31 nodes (dense inside, sparse across), then edges are added or
    removed — preferring high-degree nodes, as in the real network's hubs
    — until exactly 159 edges remain.
    """
    rng = random.Random(seed)
    node_count, target_edges = 62, 159
    half = node_count // 2
    blocks = [range(0, half), range(half, node_count)]

    edges = set()
    # Dense-ish intra-community edges, sparse inter-community bridges.
    for block in blocks:
        for u, v in itertools.combinations(block, 2):
            if rng.random() < 0.105:
                edges.add((u, v))
    for u in blocks[0]:
        for v in blocks[1]:
            if rng.random() < 0.004:
                edges.add((u, v))

    # Patch to the exact edge count, keeping the graph connected-ish by
    # preferring to attach isolated/low-degree nodes first.
    def degree_map() -> dict:
        degrees = {node: 0 for node in range(node_count)}
        for u, v in edges:
            degrees[u] += 1
            degrees[v] += 1
        return degrees

    while len(edges) < target_edges:
        degrees = degree_map()
        u = min(range(node_count), key=lambda n: (degrees[n], n))
        community = range(0, half) if u < half else range(half, node_count)
        candidates = [
            v
            for v in community
            if v != u and (min(u, v), max(u, v)) not in edges
        ]
        if not candidates:
            candidates = [
                v
                for v in range(node_count)
                if v != u and (min(u, v), max(u, v)) not in edges
            ]
        v = rng.choice(candidates)
        edges.add((min(u, v), max(u, v)))
    while len(edges) > target_edges:
        degrees = degree_map()
        # Drop an edge between two high-degree nodes (safest removal).
        u, v = max(
            edges, key=lambda edge: (degrees[edge[0]] + degrees[edge[1]], edge)
        )
        edges.remove((u, v))

    return graph_from_edges(
        _attach_probabilities(sorted(edges), probability_range, seed)
    )


#: Name → constructor, as used by the Fig. 9 benchmark.
SOCIAL_NETWORKS = {
    "karate": karate_club_network,
    "dolphins": dolphins_like_network,
}
