"""Probabilistic graphs and the paper's motif queries (Section VII.B).

An undirected *random graph* on ``n`` nodes is a probabilistic database
whose possible worlds are the subgraphs of the ``n``-clique: every edge of
the clique is present independently with probability ``p_e`` (uniform
worlds for ``p_e = 1/2``).

Social networks are the same representation over a fixed edge list with
per-edge "degree of belief" probabilities.

Four queries from the paper:

* ``triangle`` (t) — is there a 3-clique?  (Fig. 5's motif query: a
  three-way self-join.)
* ``path2`` (p2) — is there a simple path of length 2?
* ``path3`` (p3) — is there a simple path of length 3?
* ``separation`` (s2) — are two given nodes within ≤ 2 degrees of
  separation?

Each query is provided both as a *lineage generator* producing the answer
DNF directly (the form the confidence algorithms consume; motif
enumeration replaces the relational self-join, which is semantically
identical for these patterns) and, for the engine tests, the edge table is
a plain tuple-independent relation usable in conjunctive queries.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..core.dnf import DNF
from ..core.events import Clause
from ..core.variables import VariableRegistry
from ..db.database import Database
from ..db.relation import Relation

__all__ = [
    "ProbabilisticGraph",
    "random_graph",
    "graph_from_edges",
    "triangle_dnf",
    "path2_dnf",
    "path3_dnf",
    "separation2_dnf",
    "GRAPH_QUERIES",
]

Edge = Tuple[int, int]


def _normalise(u: int, v: int) -> Edge:
    if u == v:
        raise ValueError(f"self-loop on node {u}")
    return (u, v) if u < v else (v, u)


class ProbabilisticGraph:
    """An undirected graph whose edges exist independently.

    Attributes
    ----------
    nodes:
        Sorted node list.
    edges:
        ``(u, v) -> probability`` with ``u < v``.
    registry:
        The probability space holding one Boolean variable per edge,
        named ``("E", (u, v))``.
    """

    __slots__ = ("nodes", "edges", "registry")

    def __init__(
        self,
        nodes: Sequence[int],
        edges: Dict[Edge, float],
        registry: Optional[VariableRegistry] = None,
    ) -> None:
        self.nodes = sorted(nodes)
        self.edges = dict(edges)
        self.registry = registry if registry is not None else VariableRegistry()
        for edge, probability in self.edges.items():
            variable = self.edge_variable(*edge)
            if variable not in self.registry:
                self.registry.add_boolean(variable, probability)

    @staticmethod
    def edge_variable(u: int, v: int) -> Hashable:
        return ("E", _normalise(u, v))

    def has_edge(self, u: int, v: int) -> bool:
        return _normalise(u, v) in self.edges

    def neighbours(self, node: int) -> List[int]:
        result = []
        for (u, v) in self.edges:
            if u == node:
                result.append(v)
            elif v == node:
                result.append(u)
        return sorted(result)

    def edge_count(self) -> int:
        return len(self.edges)

    # ------------------------------------------------------------------
    def to_database(self) -> Database:
        """The graph as a tuple-independent edge relation ``E(u, v)``
        (one row per undirected edge, ``u < v``, as in Fig. 5a)."""
        database = Database(self.registry)
        relation = Relation("E", ["u", "v"])
        from ..core.events import Atom
        from ..core.formulas import AtomNode

        for (u, v) in sorted(self.edges):
            variable = self.edge_variable(u, v)
            relation.variable_origin[variable] = "E"
            relation.rows.append(((u, v), AtomNode(Atom(variable, True))))
        database.add(relation)
        return database

    def __repr__(self) -> str:
        return (
            f"ProbabilisticGraph({len(self.nodes)} nodes, "
            f"{len(self.edges)} edges)"
        )


def random_graph(
    node_count: int,
    edge_probability: float,
    *,
    registry: Optional[VariableRegistry] = None,
) -> ProbabilisticGraph:
    """The ``n``-clique with every edge present with ``edge_probability``.

    This is the paper's random-graph model: a single probability for all
    ``n·(n−1)/2`` edges, giving ``2^(n·(n−1)/2)`` possible worlds.
    """
    if node_count < 2:
        raise ValueError("need at least two nodes")
    if not (0.0 < edge_probability < 1.0):
        raise ValueError("edge probability must be in (0, 1)")
    edges = {
        (u, v): edge_probability
        for u, v in itertools.combinations(range(node_count), 2)
    }
    return ProbabilisticGraph(range(node_count), edges, registry)


def graph_from_edges(
    edges_with_probabilities: Iterable[Tuple[int, int, float]],
    *,
    registry: Optional[VariableRegistry] = None,
) -> ProbabilisticGraph:
    """A probabilistic graph over an explicit weighted edge list."""
    edge_map: Dict[Edge, float] = {}
    nodes = set()
    for u, v, probability in edges_with_probabilities:
        edge = _normalise(u, v)
        if edge in edge_map:
            raise ValueError(f"duplicate edge {edge}")
        edge_map[edge] = probability
        nodes.update(edge)
    return ProbabilisticGraph(sorted(nodes), edge_map, registry)


# ----------------------------------------------------------------------
# Motif queries as lineage DNFs
# ----------------------------------------------------------------------
def _edge_atom_clause(graph: ProbabilisticGraph, *edges: Edge) -> Clause:
    return Clause(
        {graph.edge_variable(u, v): True for (u, v) in edges}
    )


def triangle_dnf(graph: ProbabilisticGraph) -> DNF:
    """``∃ X<Y<Z: E(X,Y) ∧ E(Y,Z) ∧ E(X,Z)`` — one clause per triangle
    candidate whose three edges all exist in the graph."""
    clauses = []
    adjacency: Dict[int, set] = {node: set() for node in graph.nodes}
    for (u, v) in graph.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    for u, v in sorted(graph.edges):
        for w in sorted(adjacency[u] & adjacency[v]):
            if w > v:
                clauses.append(
                    _edge_atom_clause(graph, (u, v), (v, w), (u, w))
                )
    return DNF(clauses)


def path2_dnf(graph: ProbabilisticGraph) -> DNF:
    """Is there a simple path of length 2 (three distinct nodes)?"""
    clauses = []
    for middle in graph.nodes:
        neighbours = graph.neighbours(middle)
        for left, right in itertools.combinations(neighbours, 2):
            clauses.append(
                _edge_atom_clause(graph, (left, middle), (middle, right))
            )
    return DNF(clauses)


def path3_dnf(graph: ProbabilisticGraph) -> DNF:
    """Is there a simple path of length 3 (four distinct nodes)?

    Paths a−b−c−d are enumerated once (the reverse orientation is
    deduplicated by requiring ``b < c``).
    """
    clauses = []
    for (b, c) in sorted(graph.edges):
        for a in graph.neighbours(b):
            if a in (b, c):
                continue
            for d in graph.neighbours(c):
                if d in (a, b, c):
                    continue
                clauses.append(
                    _edge_atom_clause(graph, (a, b), (b, c), (c, d))
                )
    return DNF(clauses)


def separation2_dnf(
    graph: ProbabilisticGraph, source: int, target: int
) -> DNF:
    """Are ``source`` and ``target`` within two degrees of separation?

    ``E(s,t) ∨ ∃w: E(s,w) ∧ E(w,t)`` over edges present in the graph.
    """
    if source == target:
        raise ValueError("source and target must differ")
    clauses = []
    if graph.has_edge(source, target):
        clauses.append(_edge_atom_clause(graph, (source, target)))
    for middle in graph.nodes:
        if middle in (source, target):
            continue
        if graph.has_edge(source, middle) and graph.has_edge(middle, target):
            clauses.append(
                _edge_atom_clause(
                    graph, (source, middle), (middle, target)
                )
            )
    return DNF(clauses)


#: Query name → DNF generator, as used by the Fig. 8/9 benchmarks.  The
#: ``s2`` entry picks the two highest-degree nodes as endpoints when none
#: are supplied, matching the "two given nodes" of the paper.
def _s2_default(graph: ProbabilisticGraph) -> DNF:
    degree: Dict[int, int] = {node: 0 for node in graph.nodes}
    for (u, v) in graph.edges:
        degree[u] += 1
        degree[v] += 1
    first, second = sorted(
        graph.nodes, key=lambda node: (-degree[node], node)
    )[:2]
    return separation2_dnf(graph, first, second)


GRAPH_QUERIES = {
    "t": triangle_dnf,
    "p2": path2_dnf,
    "p3": path3_dnf,
    "s2": _s2_default,
}
