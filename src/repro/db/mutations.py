"""Probabilistic DML: insert / update / delete with transactions.

The paper's machinery assumes a frozen tuple-independent database; this
module makes the database *live*.  Each mutation

1. edits the relation (and the registry, for probability changes),
2. computes the set of touched random variables, and
3. runs one surgical :func:`~repro.circuits.incremental.invalidate_variables`
   pass — only circuits and decomposition cones whose variable sets
   intersect the change are evicted; every disjoint query stays warm.

Mutations run either *autocommit* (each one immediately bumps the
session circuit-cache version, so serving snapshots refresh) or inside a
:class:`Transaction` (``db.transaction()``), which defers the version
bump to commit and can roll everything back: relation contents, minted
variables, and replaced distributions.  Interned ids are process-wide
and append-only by design, so rollback never un-interns — it only
restores registry/relation state, which is all correctness needs.

Semantics per row shape
-----------------------
* **insert** with ``0 < p < 1`` mints a fresh Boolean lineage variable
  ``(table, index)`` exactly like
  :meth:`~repro.db.relation.Relation.tuple_independent`; ``p`` omitted
  or ``>= 1`` inserts a certain row (lineage ``⊤``); ``p <= 0`` is an
  error (a tuple with no mass is a non-insert — use ``delete``).
* **update** of values rewrites the tuple, keeping its lineage.
* **update** of probability: a certain row with ``p < 1`` mints a fresh
  variable; a tuple-independent row re-registers its variable at the
  new probability (``set_boolean``); raising to ``p >= 1`` promotes the
  row to certain (the old variable stays registered — lineage of other
  relations may share it via renaming); rows with complex (c-table)
  lineage refuse probability updates.
* **delete** removes matching rows.  Their lineage variables stay
  registered: renamed relations share row lists, and a dangling
  registration is harmless (confidence depends only on variables that
  occur in lineage).

Probability updates additionally retire the engine's worker pools:
per-worker decomposition caches memoise numeric results keyed only by
intern version, which does not move on a probability change.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..circuits.incremental import (
    InvalidationReport,
    invalidate_variables,
    variable_ids_of,
)
from ..core.events import Atom
from ..core.formulas import TRUE, AtomNode, Formula, TrueNode
from .relation import Relation, Row

__all__ = [
    "MutationError",
    "MutationResult",
    "Transaction",
    "apply_insert",
    "apply_update",
    "apply_delete",
]

#: A ``WHERE`` specification: ``None`` (all rows), a ``column -> value``
#: equality map, a predicate over the row's ``attribute -> value`` dict,
#: or a sequence of ``(column, operator, literal)`` triples (AND-ed).
WhereSpec = Union[
    None,
    Mapping[str, Hashable],
    Callable[[Mapping[str, Hashable]], bool],
    Sequence[Tuple[str, str, Hashable]],
]

_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class MutationError(ValueError):
    """A mutation that cannot be applied (bad table, shape, or mass)."""


class MutationResult:
    """What one mutation did.

    Attributes
    ----------
    op:
        ``"insert"`` / ``"update"`` / ``"delete"``.
    table:
        The mutated relation's name.
    rows_affected:
        Rows inserted, rewritten, or removed.
    touched_variables:
        Names of every random variable the mutation touched (minted,
        re-registered, promoted, or occurring in deleted lineage).
    invalidation:
        The :class:`~repro.circuits.incremental.InvalidationReport` of
        the surgical eviction pass this mutation ran.
    """

    __slots__ = (
        "op", "table", "rows_affected", "touched_variables", "invalidation",
    )

    def __init__(
        self,
        op: str,
        table: str,
        rows_affected: int,
        touched_variables: FrozenSet[Hashable],
        invalidation: InvalidationReport,
    ) -> None:
        self.op = op
        self.table = table
        self.rows_affected = rows_affected
        self.touched_variables = touched_variables
        self.invalidation = invalidation

    def __repr__(self) -> str:
        return (
            f"MutationResult({self.op} {self.table!r}, "
            f"rows={self.rows_affected}, "
            f"vars={len(self.touched_variables)}, "
            f"evicted={self.invalidation.circuits_evicted}c/"
            f"{self.invalidation.memo_evicted}m)"
        )


# ----------------------------------------------------------------------
# WHERE compilation
# ----------------------------------------------------------------------
def _compile_where(
    relation: Relation, where: WhereSpec
) -> Callable[[Row], bool]:
    """Lower a ``WHERE`` spec to a predicate over raw value tuples."""
    if where is None:
        return lambda values: True
    attributes = relation.attributes
    if callable(where):
        def row_dict_pred(values: Row) -> bool:
            return bool(where(dict(zip(attributes, values))))
        return row_dict_pred
    if isinstance(where, Mapping):
        conditions = [(column, "=", literal) for column, literal in where.items()]
    else:
        conditions = [tuple(entry) for entry in where]  # type: ignore[misc]
    compiled: List[Tuple[int, Callable[[object, object], bool], Hashable]] = []
    for column, operator, literal in conditions:
        op = _OPERATORS.get(operator)
        if op is None:
            raise MutationError(
                f"unsupported WHERE operator {operator!r}"
            )
        compiled.append((relation.attribute_index(column), op, literal))

    def pred(values: Row) -> bool:
        return all(op(values[index], literal) for index, op, literal in compiled)

    return pred


def _relation_of(session, table: str) -> Relation:
    if table not in session.database:
        raise MutationError(f"unknown relation {table!r}")
    return session.database[table]


def _mint_variable(session, relation: Relation, probability: float):
    """A fresh Boolean lineage variable for one row of ``relation``.

    Names follow the :meth:`Relation.tuple_independent` convention
    ``(table, index)``; the index probes past names already registered
    (earlier rows, earlier sessions sharing the registry).
    """
    index = len(relation.rows)
    variable = (relation.name, index)
    while variable in session.registry:
        index += 1
        variable = (relation.name, index)
    session.registry.add_boolean(variable, probability)
    relation.variable_origin[variable] = relation.name
    return variable


def _invalidate(
    session,
    touched: FrozenSet[Hashable],
    *,
    probabilities_changed: bool,
) -> InvalidationReport:
    """The cone-level eviction pass one mutation runs."""
    report = invalidate_variables(
        variable_ids_of(touched),
        circuits=session.circuits,
        memo=session.engine.cache,
    )
    if probabilities_changed and session.engine._worker_pools:
        # Worker-side decomposition caches key on intern version, which
        # a probability-only change does not move — retire the pools so
        # the next sharded batch ships fresh state.
        session.engine.retire_worker_pools()
    return report


def _finish(
    session,
    txn: Optional["Transaction"],
    result: MutationResult,
    undo: Callable[[], None],
    *,
    probabilities_changed: bool,
) -> MutationResult:
    if txn is not None:
        txn._record(result, undo, probabilities_changed)
    else:
        # Autocommit: the serving tier keys snapshots and response
        # caches on the circuit-cache version; bump it now.
        session.circuits.touch()
    return result


# ----------------------------------------------------------------------
# The three mutations
# ----------------------------------------------------------------------
def apply_insert(
    session,
    table: str,
    row: Sequence[Hashable],
    probability: Optional[float] = None,
) -> MutationResult:
    """Insert one row; see the module docstring for the probability
    semantics.  Returns a :class:`MutationResult`."""
    relation = _relation_of(session, table)
    values = tuple(row)
    if len(values) != len(relation.attributes):
        raise MutationError(
            f"row {values!r} has {len(values)} values; relation "
            f"{table!r} has {len(relation.attributes)} attributes"
        )
    minted = None
    if probability is None or probability >= 1.0:
        lineage: Formula = TRUE
    elif probability <= 0.0:
        raise MutationError(
            f"insert into {table!r} with probability {probability} — a "
            "tuple with no mass is not an insert"
        )
    else:
        minted = _mint_variable(session, relation, probability)
        lineage = AtomNode(Atom(minted, True))
    position = len(relation.rows)
    relation._append(values, lineage)
    relation._simple_lineage_memo = None
    touched = frozenset(() if minted is None else (minted,))
    # A brand-new variable cannot occur in any cached cone, so the pass
    # is a no-op for pure inserts — kept for the uniform report.
    report = _invalidate(session, touched, probabilities_changed=False)

    def undo() -> None:
        del relation.rows[position]
        relation._simple_lineage_memo = None
        if minted is not None:
            session.registry.remove_variable(minted)
            relation.variable_origin.pop(minted, None)

    result = MutationResult("insert", table, 1, touched, report)
    return _finish(
        session, session._txn, result, undo, probabilities_changed=False
    )


def apply_delete(
    session, table: str, where: WhereSpec = None
) -> MutationResult:
    """Delete matching rows; their lineage variables stay registered."""
    relation = _relation_of(session, table)
    pred = _compile_where(relation, where)
    kept: List[Tuple[Row, Formula]] = []
    removed: List[Tuple[int, Row, Formula]] = []
    for index, (values, lineage) in enumerate(relation.rows):
        if pred(values):
            removed.append((index, values, lineage))
        else:
            kept.append((values, lineage))
    if removed:
        relation.rows[:] = kept
        relation._simple_lineage_memo = None
    touched = frozenset().union(
        *(lineage.variables() for _i, _v, lineage in removed)
    ) if removed else frozenset()
    report = _invalidate(session, touched, probabilities_changed=False)

    def undo() -> None:
        # Ascending-index reinsertion restores the exact original order.
        for index, values, lineage in removed:
            relation.rows.insert(index, (values, lineage))
        relation._simple_lineage_memo = None

    result = MutationResult("delete", table, len(removed), touched, report)
    return _finish(
        session, session._txn, result, undo, probabilities_changed=False
    )


def apply_update(
    session,
    table: str,
    *,
    values: Optional[Mapping[str, Hashable]] = None,
    probability: Optional[float] = None,
    where: WhereSpec = None,
) -> MutationResult:
    """Rewrite matching rows' values and/or probability."""
    relation = _relation_of(session, table)
    if values is None and probability is None:
        raise MutationError(
            "update needs values= and/or probability="
        )
    if probability is not None and probability <= 0.0:
        raise MutationError(
            f"update of {table!r} to probability {probability} — delete "
            "the row instead of zeroing its mass"
        )
    value_slots: List[Tuple[int, Hashable]] = []
    if values:
        value_slots = [
            (relation.attribute_index(column), literal)
            for column, literal in values.items()
        ]
    pred = _compile_where(relation, where)
    #: per-row undo records:
    #: (index, old_values, old_lineage, replaced_dist_var, old_dist, minted)
    undo_log: List[
        Tuple[int, Row, Formula, Optional[Hashable],
              Optional[Dict[Hashable, float]], Optional[Hashable]]
    ] = []
    touched: set = set()
    probabilities_changed = False
    affected = 0
    for index, (old_values, old_lineage) in enumerate(relation.rows):
        if not pred(old_values):
            continue
        affected += 1
        new_values = old_values
        if value_slots:
            row_list = list(old_values)
            for slot, literal in value_slots:
                row_list[slot] = literal
            new_values = tuple(row_list)
        new_lineage = old_lineage
        replaced_var: Optional[Hashable] = None
        old_dist: Optional[Dict[Hashable, float]] = None
        minted: Optional[Hashable] = None
        if probability is not None:
            if isinstance(old_lineage, TrueNode):
                if probability < 1.0:
                    minted = _mint_variable(session, relation, probability)
                    new_lineage = AtomNode(Atom(minted, True))
                    touched.add(minted)
                # p >= 1 on a certain row: no-op.
            elif isinstance(old_lineage, AtomNode):
                atom = old_lineage.atom
                variable = atom.variable
                if atom.value is not True or not session.registry.is_boolean(
                    variable
                ):
                    raise MutationError(
                        f"row {old_values!r} of {table!r} has "
                        "block-disjoint lineage; per-row probability "
                        "updates apply only to tuple-independent rows"
                    )
                if probability >= 1.0:
                    # Promote to certain; the variable stays registered
                    # (renamed relations may share this row list).
                    new_lineage = TRUE
                    touched.add(variable)
                else:
                    old_dist = session.registry.set_boolean(
                        variable, probability
                    )
                    replaced_var = variable
                    touched.add(variable)
                    probabilities_changed = True
            else:
                raise MutationError(
                    f"row {old_values!r} of {table!r} carries complex "
                    "(c-table) lineage; update its probability by "
                    "re-registering the underlying variables instead"
                )
        if new_values is not old_values or new_lineage is not old_lineage:
            relation.rows[index] = (new_values, new_lineage)
            undo_log.append(
                (index, old_values, old_lineage, replaced_var, old_dist,
                 minted)
            )
        elif replaced_var is not None:  # pragma: no cover - unreachable
            undo_log.append(
                (index, old_values, old_lineage, replaced_var, old_dist,
                 minted)
            )
    if undo_log:
        relation._simple_lineage_memo = None
    report = _invalidate(
        session,
        frozenset(touched),
        probabilities_changed=probabilities_changed,
    )

    def undo() -> None:
        for index, old_values, old_lineage, replaced_var, old_dist, minted \
                in reversed(undo_log):
            relation.rows[index] = (old_values, old_lineage)
            if replaced_var is not None and old_dist is not None:
                session.registry.set_distribution(replaced_var, old_dist)
            if minted is not None:
                session.registry.remove_variable(minted)
                relation.variable_origin.pop(minted, None)
        relation._simple_lineage_memo = None

    result = MutationResult(
        "update", table, affected, frozenset(touched), report
    )
    return _finish(
        session, session._txn, result, undo,
        probabilities_changed=probabilities_changed,
    )


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------
class Transaction:
    """A rollback scope over a session's mutations.

    Mutations inside the transaction apply immediately (queries issued
    mid-transaction see them) and log undo closures.  ``commit()``
    discards the log and bumps the circuit-cache version once — the
    serving tier's read-your-writes signal.  ``rollback()`` replays the
    log in reverse, restoring relation rows, minted variables, and
    replaced distributions, then runs one more invalidation pass over
    everything the transaction touched (cones compiled *during* the
    transaction reflect its now-reverted state).

    Use as a context manager: a clean exit commits, an exception rolls
    back and re-raises::

        with db.transaction():
            db.insert("R", ("a", 1), probability=0.5)
            db.update("R", probability=0.9, where={"id": 7})
    """

    __slots__ = ("session", "_undo", "_touched", "_probs_changed", "_state")

    def __init__(self, session) -> None:
        if session._txn is not None:
            raise MutationError(
                "a transaction is already active on this session"
            )
        self.session = session
        self._undo: List[Callable[[], None]] = []
        self._touched: set = set()
        self._probs_changed = False
        self._state = "active"
        session._txn = self

    def _record(
        self,
        result: MutationResult,
        undo: Callable[[], None],
        probabilities_changed: bool,
    ) -> None:
        self._undo.append(undo)
        self._touched.update(result.touched_variables)
        self._probs_changed = self._probs_changed or probabilities_changed

    @property
    def active(self) -> bool:
        return self._state == "active"

    def commit(self) -> None:
        """Make the transaction's mutations durable for this session."""
        self._close("committed")
        self._undo.clear()
        self.session.circuits.touch()

    def rollback(self) -> None:
        """Undo every mutation of this transaction, newest first."""
        self._close("rolled-back")
        try:
            for undo in reversed(self._undo):
                undo()
        finally:
            self._undo.clear()
        # Cones compiled mid-transaction captured since-reverted state.
        _invalidate(
            self.session,
            frozenset(self._touched),
            probabilities_changed=self._probs_changed,
        )
        self.session.circuits.touch()

    def _close(self, state: str) -> None:
        if self._state != "active":
            raise MutationError(
                f"transaction already {self._state}"
            )
        self._state = state
        self.session._txn = None

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return  # committed / rolled back explicitly inside the block
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def __repr__(self) -> str:
        return (
            f"Transaction({self._state}, {len(self._undo)} mutations, "
            f"{len(self._touched)} variables touched)"
        )
