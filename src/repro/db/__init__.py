"""Probabilistic database substrate (paper, Section VI).

* :mod:`~repro.db.relation` — tuple-independent, block-independent-
  disjoint, certain, and c-table relations with lineage;
* :mod:`~repro.db.database` — a named collection of relations over one
  probability space;
* :mod:`~repro.db.algebra` — positive relational algebra with lineage and
  the ``conf()`` aggregate;
* :mod:`~repro.db.cq` — conjunctive queries and the tractability
  classifiers (hierarchical, IQ, Theorem 6.4 hard patterns);
* :mod:`~repro.db.engine` — query evaluation producing per-answer lineage
  DNFs;
* :mod:`~repro.db.sprout` — the SPROUT-style exact extensional operator
  for hierarchical queries (the paper's exact baseline);
* :mod:`~repro.db.session` — the :class:`ProbDB` session façade with
  lazy :class:`QueryResult` objects, the library's front door.
"""

from .algebra import (
    conf,
    natural_join,
    product,
    project,
    rename_attributes,
    select,
    theta_join,
    union,
)
from .cq import (
    ConjunctiveQuery,
    Const,
    Inequality,
    SubGoal,
    Var,
    hard_pattern_tractable,
)
from .database import Database
from .engine import QueryAnswer, answer_selector, evaluate, evaluate_to_dnf
from .explain import InfluenceReport, QueryExplanation, explain, rank_influence
from .mutations import MutationError, MutationResult, Transaction
from .relation import Relation
from .session import BoundsSnapshot, ProbDB, QueryResult
from .sprout import UnsafeQueryError, sprout_confidence
from .sql import (
    DeleteStatement,
    InsertStatement,
    SqlSyntaxError,
    TransactionStatement,
    UpdateStatement,
    parse_conf_query,
    parse_statement,
    run_conf_query,
)
from .topk import RankedAnswer, rank_answers, top_k_answers

__all__ = [
    "BoundsSnapshot",
    "ProbDB",
    "QueryResult",
    "rank_answers",
    "conf",
    "natural_join",
    "product",
    "project",
    "rename_attributes",
    "select",
    "theta_join",
    "union",
    "ConjunctiveQuery",
    "Const",
    "Inequality",
    "SubGoal",
    "Var",
    "hard_pattern_tractable",
    "Database",
    "QueryAnswer",
    "answer_selector",
    "evaluate",
    "evaluate_to_dnf",
    "Relation",
    "UnsafeQueryError",
    "sprout_confidence",
    "SqlSyntaxError",
    "parse_conf_query",
    "parse_statement",
    "run_conf_query",
    "MutationError",
    "MutationResult",
    "Transaction",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "TransactionStatement",
    "InfluenceReport",
    "QueryExplanation",
    "explain",
    "rank_influence",
    "RankedAnswer",
    "top_k_answers",
]
