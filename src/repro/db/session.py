"""The ``ProbDB`` session façade and lazy ``QueryResult`` objects.

The paper's system (SPROUT inside MayBMS) exposes a single surface — SQL
with ``conf()``.  This module is our equivalent: one session object per
probabilistic database, one lazy result object per query, and one
:class:`~repro.engine.EngineConfig` policy honoured everywhere::

    db = ProbDB(database, EngineConfig(epsilon=0.01, error_kind="relative"))
    result = db.sql("select conf() from E n1, E n2 where n1.v = n2.u")
    result.answers()               # tuples only, no confidence work
    result.confidences()           # batched anytime confidence per answer
    for snapshot in result.bounds():   # certified interval snapshots
        ...
    result.top_k(5)                # interval-pruned ranking
    result.explain()               # the planner's routing decision

Everything a session runs shares one :class:`~repro.engine.ConfidenceEngine`,
its :class:`~repro.core.memo.DecompositionCache`, and one interned
variable registry, so repeated sub-DNFs across queries, answers, and
refinement rounds fold instantly instead of being recompiled.  A
:class:`QueryResult` is lazy: parsing happens at ``sql()`` time (syntax
errors surface early), lineage is materialised on first use, and
confidences are computed — batched through
:meth:`~repro.engine.ConfidenceEngine.compute_many` — only when asked
for, then memoised per request.
"""

from __future__ import annotations

import os
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..circuits import Circuit, CircuitCache, CompiledResult, SweepResult
from ..circuits.circuit import ProbOverrides
from ..core.dnf import DNF
from ..core.formulas import Formula
from ..core.memo import DecompositionCache
from ..core.variables import VariableRegistry
from ..engine import (
    ConfidenceEngine,
    EngineConfig,
    EngineResult,
    circuit_hit_result,
)
from .cq import ConjunctiveQuery
from .database import Database
from .engine import QueryAnswer, evaluate
from .explain import QueryExplanation, explain, rank_influence
from . import mutations
from .sql import ParsedQuery, parse_conf_query, parse_statement
from .topk import RankedAnswer, rank_answers

__all__ = ["ProbDB", "QueryResult", "BoundsSnapshot"]

AnswerValues = Tuple[Hashable, ...]
LineageAnswer = Tuple[AnswerValues, DNF]
PathLike = Union[str, "os.PathLike[str]"]


class BoundsSnapshot:
    """One certified state of an anytime ``QueryResult.bounds()`` run.

    Attributes
    ----------
    intervals:
        ``(answer_values, lower, upper)`` per answer, in answer order.
        Every interval is sound: ``lower ≤ P(answer) ≤ upper``.
    converged:
        Whether every answer has certified the requested guarantee.
    total_steps:
        Decomposition steps charged to the batch so far.
    """

    __slots__ = ("intervals", "converged", "total_steps")

    def __init__(
        self,
        intervals: List[Tuple[AnswerValues, float, float]],
        converged: bool,
        total_steps: int,
    ) -> None:
        self.intervals = intervals
        self.converged = converged
        self.total_steps = total_steps

    def max_width(self) -> float:
        """The widest interval in this snapshot (0.0 when empty)."""
        return max(
            (upper - lower for _values, lower, upper in self.intervals),
            default=0.0,
        )

    def __len__(self) -> int:
        return len(self.intervals)

    def __repr__(self) -> str:
        return (
            f"BoundsSnapshot({len(self.intervals)} answers, "
            f"max_width={self.max_width():.4g}, "
            f"converged={self.converged}, steps={self.total_steps})"
        )


class QueryResult:
    """A lazy handle on one query's answers and their confidences.

    Nothing is evaluated at construction time.  Lineage is materialised
    on first access and cached; ``confidences()`` results are memoised
    per request, so asking twice is free.  All confidence computation
    routes through the owning session's shared engine.
    """

    __slots__ = (
        "engine",
        "database",
        "query",
        "parsed",
        "_evaluated",
        "_lineage",
        "_confidences",
        "_circuit_cache",
    )

    def __init__(
        self,
        engine: ConfidenceEngine,
        database: Optional[Database] = None,
        *,
        query: Optional[ConjunctiveQuery] = None,
        parsed: Optional[ParsedQuery] = None,
        lineage: Optional[Iterable[LineageAnswer]] = None,
        circuit_cache: Optional[CircuitCache] = None,
    ) -> None:
        if parsed is not None and query is None:
            query = parsed.query
        if query is None and lineage is None:
            raise ValueError(
                "QueryResult needs a query or precomputed lineage"
            )
        self.engine = engine
        self.database = database
        self.query = query
        self.parsed = parsed
        self._evaluated: Optional[List[QueryAnswer]] = None
        self._lineage: Optional[List[LineageAnswer]] = (
            None if lineage is None else list(lineage)
        )
        self._confidences: Dict[
            Tuple[object, ...], List[Tuple[AnswerValues, EngineResult]]
        ] = {}
        #: The owning session's compiled-circuit store (None for
        #: results constructed outside a session).
        self._circuit_cache = circuit_cache

    # -- metadata --------------------------------------------------------
    @property
    def wants_conf(self) -> bool:
        """Did the SQL text ask for ``conf()``?  (True for CQ results.)"""
        return self.parsed.wants_conf if self.parsed is not None else True

    @property
    def select_columns(self) -> List[str]:
        """The projected column names (empty for Boolean queries)."""
        if self.parsed is not None:
            return list(self.parsed.select_columns)
        if self.query is not None:
            return [str(var) for var in self.query.head]
        return []

    # -- lazy materialisation --------------------------------------------
    def _evaluate(self) -> List[QueryAnswer]:
        """Run the query once, caching answers with formula lineage."""
        if self._evaluated is None:
            if self.query is None or self.database is None:
                raise ValueError(
                    "no lineage available: result was built without a "
                    "query/database"
                )
            self._evaluated = evaluate(self.query, self.database)
        return self._evaluated

    def lineage(self) -> List[LineageAnswer]:
        """``(answer_values, lineage_dnf)`` pairs (evaluated on demand)."""
        if self._lineage is None:
            self._lineage = [
                (answer.values, answer.lineage.to_dnf())
                for answer in self._evaluate()
            ]
        return self._lineage

    def answers(self) -> List[AnswerValues]:
        """Distinct answer tuples, without any confidence computation.

        Stays at the formula level: unlike :meth:`lineage`, no DNF
        conversion (potentially expensive for disjunctive lineage) is
        paid just to read the tuples.
        """
        if self._lineage is not None:
            return [values for values, _dnf in self._lineage]
        return [answer.values for answer in self._evaluate()]

    def __len__(self) -> int:
        return len(self.answers())

    def __repr__(self) -> str:
        name = self.query.name if self.query is not None else "lineage"
        state = (
            "unevaluated"
            if self._lineage is None
            else f"{len(self._lineage)} answers"
        )
        return f"QueryResult({name!r}, {state})"

    # -- confidence computation ------------------------------------------
    def confidences(
        self,
        epsilon: Optional[float] = None,
        *,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        max_total_steps: Optional[int] = None,
        workers: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ) -> List[Tuple[AnswerValues, EngineResult]]:
        """Per-answer confidences as one batched anytime computation.

        SPROUT-safe queries are answered extensionally without
        materialising lineage; everything else goes through
        :meth:`~repro.engine.ConfidenceEngine.compute_many`, which shares
        the session's decomposition cache (and any shared step/time
        budget) across the whole answer set instead of issuing N cold
        calls — or shards the batch across a worker pool when
        ``workers > 1`` (argument or session config).  Defaults come
        from the session's :class:`~repro.engine.EngineConfig`; results
        are memoised per request.

        **Warm queries skip the engine.**  Answers whose lineage has an
        exact compiled circuit in the session's
        :class:`~repro.circuits.CircuitCache` (populated under
        ``EngineConfig(compile_circuits=True)`` or by
        :meth:`compile`) are evaluated by an O(|circuit|) sweep — no
        decomposition, no batching, strategy reported as
        ``"circuit"``.
        """
        key = (
            epsilon, error_kind, max_steps, deadline_seconds,
            max_total_steps, workers, executor_kind,
        )
        cached = self._confidences.get(key)
        if cached is not None:
            return cached
        answers = self._lineage
        if self.query is not None and self.database is not None:
            strategy, _reason = ConfidenceEngine.select_query_strategy(
                self.query, self.database
            )
            if strategy == "sprout":
                # Extensional route: no lineage, nothing to compile.
                pairs = self.engine.compute_query(
                    self.query,
                    self.database,
                    answers=answers,
                    epsilon=epsilon,
                    error_kind=error_kind,
                    max_steps=max_steps,
                    deadline_seconds=deadline_seconds,
                    max_total_steps=max_total_steps,
                    workers=workers,
                    executor_kind=executor_kind,
                )
                self._confidences[key] = pairs
                return pairs
        if answers is None:
            answers = self.lineage()
        pairs = self._lineage_confidences(
            answers,
            epsilon=epsilon,
            error_kind=error_kind,
            max_steps=max_steps,
            deadline_seconds=deadline_seconds,
            max_total_steps=max_total_steps,
            workers=workers,
            executor_kind=executor_kind,
        )
        self._confidences[key] = pairs
        return pairs

    def _lineage_confidences(
        self,
        answers: List[LineageAnswer],
        *,
        epsilon: Optional[float],
        error_kind: Optional[str],
        max_steps: Optional[int],
        deadline_seconds: Optional[float],
        max_total_steps: Optional[int],
        workers: Optional[int],
        executor_kind: Optional[str],
    ) -> List[Tuple[AnswerValues, EngineResult]]:
        """Batched confidences with the session circuit cache in front.

        Warm answers (exact circuit cached for their lineage) are
        answered by circuit evaluation; only the cold remainder enters
        the engine, and any exact circuits the engine compiles on the
        way are stored for the next query.
        """
        config = self.engine.config
        cache = self._circuit_cache
        results: List[Optional[EngineResult]] = [None] * len(answers)
        cold: List[int] = []
        for index, (_values, dnf) in enumerate(answers):
            circuit = cache.get(dnf) if cache is not None else None
            if circuit is not None and circuit.is_exact:
                results[index] = circuit_hit_result(
                    circuit, config, epsilon, error_kind
                )
            else:
                cold.append(index)
        if cold:
            computed = self.engine.compute_many(
                [answers[index][1] for index in cold],
                epsilon=epsilon,
                error_kind=error_kind,
                max_steps=max_steps,
                deadline_seconds=deadline_seconds,
                max_total_steps=max_total_steps,
                workers=workers,
                executor_kind=executor_kind,
            )
            for index, result in zip(cold, computed):
                results[index] = result
                if cache is not None and result.circuit is not None:
                    # Partial circuits are cached too (exact_only=False):
                    # a budgeted run's truncation frontier is resumable
                    # anytime state — later refinement (and, with a
                    # persisted store, a future process) expands it in
                    # place instead of recomputing.  The warm path above
                    # still requires is_exact before answering from it.
                    cache.put(
                        answers[index][1], result.circuit,
                        exact_only=False,
                    )
        pairs: List[Tuple[AnswerValues, EngineResult]] = []
        for (values, _dnf), result in zip(answers, results):
            if result is None:  # pragma: no cover - batch invariant
                raise RuntimeError(
                    "confidence batch returned fewer results than "
                    "answers — refusing to drop answers silently"
                )
            pairs.append((values, result))
        return pairs

    def bounds(
        self,
        epsilon: Optional[float] = None,
        *,
        error_kind: Optional[str] = None,
        initial_steps: Optional[int] = None,
        step_growth: Optional[int] = None,
        max_total_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        workers: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ) -> Iterator[BoundsSnapshot]:
        """Anytime iterator of certified interval snapshots.

        Yields a :class:`BoundsSnapshot` after the initial bounding pass
        and after every refinement step; each refinement targets the
        widest unconverged answer (the batch machinery of
        :meth:`~repro.engine.ConfidenceEngine.refine_many` — sharded
        across a worker pool when ``workers > 1``, in which case each
        step refines the widest answer per shard).  Every
        snapshot's intervals are sound, so the caller may stop consuming
        at any point; left alone, the iterator stops once the requested
        guarantee is certified for every answer or the step/time budget
        runs out.
        """
        lineage = self.lineage()
        values = [answer_values for answer_values, _dnf in lineage]
        batch = self.engine.refine_many(
            [dnf for _values, dnf in lineage],
            epsilon=epsilon,
            error_kind=error_kind,
            initial_steps=initial_steps,
            step_growth=step_growth,
            deadline_seconds=deadline_seconds,
            workers=workers,
            executor_kind=executor_kind,
        )
        if max_total_steps is None:
            max_total_steps = self.engine.config.max_total_steps

        def snapshot() -> BoundsSnapshot:
            return BoundsSnapshot(
                [
                    (answer_values, result.lower, result.upper)
                    for answer_values, result in zip(values, batch.results)
                ],
                batch.converged(),
                batch.total_steps,
            )

        try:
            yield snapshot()
            while not batch.converged():
                if (
                    max_total_steps is not None
                    and batch.total_steps >= max_total_steps
                ):
                    break
                if batch.out_of_time():
                    break
                if batch.step() is None:
                    break
                yield snapshot()
        finally:
            # Release a sharded batch's reference to the session
            # engine's worker pool when the iterator finishes or is
            # abandoned; the pool stays warm on the engine until
            # ``ProbDB.close()`` (or GC) retires it.
            close = getattr(batch, "close", None)
            if close is not None:
                close()

    def top_k(
        self,
        k: int,
        *,
        separation: float = 0.0,
        initial_steps: Optional[int] = None,
        step_growth: Optional[int] = None,
        max_total_steps: Optional[int] = None,
        workers: Optional[int] = None,
        executor_kind: Optional[str] = None,
    ) -> List[RankedAnswer]:
        """The k most probable answers, certified by interval pruning."""
        return rank_answers(
            self.engine,
            self.lineage(),
            k,
            initial_steps=initial_steps,
            step_growth=step_growth,
            max_total_steps=max_total_steps,
            separation=separation,
            workers=workers,
            executor_kind=executor_kind,
        )

    # -- circuit compilation ---------------------------------------------
    def compile(
        self, *, max_nodes: Optional[int] = None
    ) -> CompiledResult:
        """Compile every answer's lineage into an arithmetic circuit.

        The compile-once/evaluate-many entry point: the returned
        :class:`~repro.circuits.CompiledResult` re-evaluates all answer
        confidences under new probability maps in O(|circuits|),
        yields per-tuple sensitivities in one backward sweep per
        answer, conditions on variable assignments, and re-ranks
        answers under hypothetical probabilities
        (``what_if_top_k``) — all without touching the engine again.

        Exact circuits (the default, ``max_nodes=None``) are also
        stored in the session's circuit cache, so later
        :meth:`confidences` calls on the same lineage skip the engine.
        """
        cache = self._circuit_cache if max_nodes is None else None
        pairs: List[Tuple[AnswerValues, Circuit]] = []
        for values, dnf in self.lineage():
            circuit = cache.get(dnf) if cache is not None else None
            if circuit is not None and not circuit.is_exact:
                # The cache may hold a *partial* circuit (resumable
                # anytime state from a budgeted run); an explicit
                # compile wants the real thing.
                circuit = None
            if circuit is None:
                circuit = self.engine.compile_circuit(
                    dnf, max_nodes=max_nodes
                )
                if cache is not None:
                    cache.put(dnf, circuit)
            pairs.append((values, circuit))
        return CompiledResult(pairs)

    def sweep(
        self,
        scenarios: Sequence[Optional[ProbOverrides]],
        *,
        vectorized: Optional[bool] = None,
        max_nodes: Optional[int] = None,
    ) -> SweepResult:
        """Every answer's confidence under every override scenario.

        Compiles the answers' circuits (through the session cache, so
        repeated sweeps — and earlier :meth:`compile` /
        :meth:`confidences` calls — share the work) and evaluates the
        whole scenario batch per circuit in one vectorized pass when
        numpy is available.  ``vectorized`` defaults to the session
        config's :attr:`~repro.engine.EngineConfig.vectorized` policy;
        the scalar fallback returns the identical grid.
        """
        if vectorized is None:
            vectorized = self.engine.config.vectorized
        return self.compile(max_nodes=max_nodes).sweep(
            scenarios, vectorized=vectorized
        )

    def what_if_grid(
        self,
        variable: Hashable,
        probabilities: Sequence[float],
        *,
        vectorized: Optional[bool] = None,
        max_nodes: Optional[int] = None,
    ) -> SweepResult:
        """Sweep one Boolean tuple's probability across every answer.

        ``result.what_if_grid("t", [i / 10 for i in range(11)])`` is
        the one-dimensional sensitivity scan: each answer's confidence
        as a function of ``P(t)``, one vectorized sweep per circuit.
        """
        if vectorized is None:
            vectorized = self.engine.config.vectorized
        return self.compile(max_nodes=max_nodes).what_if_grid(
            variable, probabilities, vectorized=vectorized
        )

    def explain(
        self, include_influence: Optional[bool] = None, *, top: int = 5
    ) -> QueryExplanation:
        """The planner's routing decision, plus tuple influence.

        ``include_influence`` adds a per-answer ranking of the most
        influential tuples to the report: by **true circuit gradients**
        when a compiled circuit is available in the session cache, by
        the frequency heuristic otherwise — each
        :class:`~repro.db.explain.InfluenceReport` says which method it
        used.  The default (``None``) includes influence only when
        lineage is already materialised, so a fresh ``explain()`` stays
        a pure planning call; pass ``True`` to force lineage
        materialisation, ``top`` bounds entries per answer.
        """
        if self.query is None:
            raise ValueError(
                "lineage-only results carry no query to explain"
            )
        report = explain(self.query, self.database)
        if include_influence is None:
            include_influence = self._lineage is not None
        if include_influence:
            cache = self._circuit_cache
            influence = []
            gradient_ranked = 0
            for values, dnf in self.lineage():
                circuit = cache.get(dnf) if cache is not None else None
                entry = rank_influence(
                    dnf,
                    self.engine.registry,
                    circuit=circuit,
                    top=top,
                )
                if entry.method == "circuit-gradient":
                    gradient_ranked += 1
                influence.append((values, entry))
            report.influence = influence
            report.notes.append(
                f"influence: {gradient_ranked}/{len(influence)} answers "
                "ranked by true circuit gradients, the rest by the "
                "frequency heuristic"
            )
        return report


class ProbDB:
    """A probabilistic-database session: the library's front door.

    One session owns one :class:`~repro.engine.ConfidenceEngine` — and
    therefore one decomposition cache and one interned registry — for
    its whole lifetime; every query, ranking, and explanation issued
    through it shares that state.

    Parameters
    ----------
    database:
        The :class:`~repro.db.database.Database` to query.
    config:
        The session's :class:`~repro.engine.EngineConfig`; defaults
        (exact computation, auto pivot order) when omitted.
    engine:
        An existing engine to adopt instead (mutually exclusive with
        ``config``/``cache``); its config becomes the session's.
    cache:
        A :class:`~repro.core.memo.DecompositionCache` to share with
        other sessions.
    persist_circuits:
        Path of a circuit store (:mod:`repro.circuits.serialize`).  If
        the file exists, the session's circuit cache warm-starts from
        it — queries whose lineage was compiled in an earlier session
        answer with strategy ``"circuit"`` without ever touching the
        engine, even though this is a brand-new process with its own
        intern tables.  On :meth:`close` (or context-manager exit) the
        cache is saved back, so repeated sessions compound: compile
        once, anywhere; evaluate everywhere, forever.
    strict_store:
        How to treat store entries the database no longer covers
        (variables dropped since the save).  ``True`` (default) raises
        :class:`~repro.circuits.CircuitStoreError` at construction —
        loud invalidation; ``False`` skips the stale entries and
        warm-starts from whatever is still valid (the close-time save
        then rewrites the store without them).
    """

    __slots__ = ("database", "engine", "circuits", "_circuit_store", "_txn")

    def __init__(
        self,
        database: Database,
        config: Optional[EngineConfig] = None,
        *,
        engine: Optional[ConfidenceEngine] = None,
        cache: Optional[DecompositionCache] = None,
        persist_circuits: Optional[PathLike] = None,
        strict_store: bool = True,
    ) -> None:
        if engine is not None:
            if config is not None:
                raise TypeError(
                    "pass either config= or engine=, not both "
                    "(an engine carries its own config)"
                )
            if cache is not None:
                raise TypeError(
                    "pass either cache= or engine=, not both "
                    "(an engine carries its own cache)"
                )
        else:
            engine = ConfidenceEngine.for_database(
                database, config, cache=cache
            )
        self.database = database
        self.engine = engine
        #: Compiled circuits keyed by interned lineage DNF; a warm
        #: query's confidences are O(|circuit|) sweeps, engine skipped.
        self.circuits = CircuitCache()
        # Let the engine's MC rung sample worlds on a session-cached
        # exact circuit (vectorized, when numpy is available) instead
        # of running per-sample Karp-Luby over the raw lineage — and
        # let batched refinement resume cached *partial* circuits
        # (strategy "circuit-refine"), writing expansion progress back
        # so it survives the batch and, with a persisted store, the
        # process.
        engine.circuit_source = self.circuits.get
        engine.circuit_sink = self._store_partial_circuit
        #: The active :class:`~repro.db.mutations.Transaction`, if any.
        self._txn = None
        self._circuit_store: Optional[str] = (
            None if persist_circuits is None else os.fspath(persist_circuits)
        )
        if self._circuit_store is not None and os.path.exists(
            self._circuit_store
        ):
            self.circuits.load_into(
                self._circuit_store, self.registry, strict=strict_store
            )

    @classmethod
    def from_registry(
        cls,
        registry: VariableRegistry,
        config: Optional[EngineConfig] = None,
        *,
        cache: Optional[DecompositionCache] = None,
        persist_circuits: Optional[PathLike] = None,
        strict_store: bool = True,
    ) -> "ProbDB":
        """A session over a bare probability space (no relations yet).

        Useful for lineage-level workloads — motif DNFs, hand-built
        formulas — that still want the shared planner, cache, and the
        :meth:`lineage` / :meth:`confidence` entry points.
        """
        return cls(
            Database(registry), config, cache=cache,
            persist_circuits=persist_circuits,
            strict_store=strict_store,
        )

    @classmethod
    def open(
        cls,
        database: Database,
        config: Optional[EngineConfig] = None,
        *,
        circuit_store: PathLike,
        cache: Optional[DecompositionCache] = None,
        strict_store: bool = True,
    ) -> "ProbDB":
        """A session warm-started from (and persisted to) a circuit store.

        Sugar for ``ProbDB(database, config,
        persist_circuits=circuit_store)``, reading as the intent: open
        the database *with* its compiled-circuit store.  A missing
        store file is not an error — the first session starts cold and
        writes the store on :meth:`close`; ``strict_store=False``
        additionally tolerates a *stale* store (entries over dropped
        variables are skipped instead of failing construction).
        """
        return cls(
            database, config, cache=cache,
            persist_circuits=circuit_store,
            strict_store=strict_store,
        )

    @property
    def config(self) -> EngineConfig:
        """The session's frozen :class:`~repro.engine.EngineConfig`."""
        return self.engine.config

    @property
    def registry(self) -> VariableRegistry:
        return self.database.registry

    # -- query entry points ----------------------------------------------
    def sql(self, text: str) -> QueryResult:
        """Parse a MayBMS-style ``conf()`` query into a lazy result.

        Parsing (and therefore syntax/schema errors) happens now;
        evaluation and confidence computation happen on demand.
        """
        parsed = parse_conf_query(text, self.database)
        return QueryResult(
            self.engine, self.database, parsed=parsed,
            circuit_cache=self.circuits,
        )

    def query(self, query: ConjunctiveQuery) -> QueryResult:
        """A lazy result for a :class:`ConjunctiveQuery`."""
        return QueryResult(
            self.engine, self.database, query=query,
            circuit_cache=self.circuits,
        )

    def lineage(
        self, answers: Iterable[LineageAnswer]
    ) -> QueryResult:
        """A result over precomputed ``(values, lineage_dnf)`` pairs.

        The batched confidence, bounds, and top-k machinery applies to
        hand-built lineage exactly as to query answers.
        """
        return QueryResult(
            self.engine, self.database, lineage=answers,
            circuit_cache=self.circuits,
        )

    def confidence(
        self,
        lineage: Union[DNF, Formula],
        *,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> EngineResult:
        """One lineage formula's confidence via the session engine.

        Keyword overrides are forwarded to
        :meth:`~repro.engine.ConfidenceEngine.compute`; the session's
        :class:`~repro.engine.EngineConfig` fills the rest.  Like
        ``QueryResult.confidences()``, a lineage with an exact circuit
        in the session cache is answered by an O(|circuit|) sweep —
        strategy ``"circuit"``, engine skipped — and a freshly
        compiled circuit (``EngineConfig.compile_circuits``) is stored
        for the next call.
        """
        dnf = lineage.to_dnf() if isinstance(lineage, Formula) else lineage
        circuit = self.circuits.get(dnf)
        if circuit is not None and circuit.is_exact:
            return circuit_hit_result(
                circuit, self.engine.config, epsilon, error_kind
            )
        result = self.engine.compute(
            dnf,
            epsilon=epsilon,
            error_kind=error_kind,
            max_steps=max_steps,
            deadline_seconds=deadline_seconds,
        )
        if result.circuit is not None:
            # exact_only=False: budgeted runs leave resumable partial
            # circuits behind (see BatchComputation.refine).
            self.circuits.put(dnf, result.circuit, exact_only=False)
        return result

    def explain(
        self, query: Union[str, ConjunctiveQuery]
    ) -> QueryExplanation:
        """Classify a query (SQL text or CQ) and report the planner's
        routing decision, without running it."""
        if isinstance(query, str):
            query = parse_conf_query(query, self.database).query
        return explain(query, self.database)

    # -- mutations (probabilistic DML) -----------------------------------
    def insert(
        self,
        table: str,
        row: Sequence[Hashable],
        probability: Optional[float] = None,
    ) -> "mutations.MutationResult":
        """Insert one row into ``table``.

        ``probability`` omitted (or ``>= 1``) inserts a certain row;
        ``0 < p < 1`` mints a fresh tuple-independent lineage variable.
        Each mutation runs a cone-level invalidation pass — only cached
        circuits and memo cones whose variable sets touch the change
        are evicted (:mod:`repro.circuits.incremental`); everything
        disjoint stays warm.  Outside a :meth:`transaction` the mutation
        autocommits, bumping the circuit-cache version so live serving
        snapshots refresh.
        """
        return mutations.apply_insert(self, table, row, probability)

    def update(
        self,
        table: str,
        *,
        values: Optional[Dict[str, Hashable]] = None,
        probability: Optional[float] = None,
        where: "mutations.WhereSpec" = None,
    ) -> "mutations.MutationResult":
        """Rewrite matching rows' values and/or tuple probability.

        ``where`` is ``None`` (all rows), a ``column -> value`` map, a
        predicate over the row's ``attribute -> value`` dict, or
        ``(column, op, literal)`` triples.  See
        :mod:`repro.db.mutations` for the per-row-shape probability
        semantics.
        """
        return mutations.apply_update(
            self, table, values=values, probability=probability, where=where
        )

    def delete(
        self, table: str, where: "mutations.WhereSpec" = None
    ) -> "mutations.MutationResult":
        """Delete matching rows from ``table``."""
        return mutations.apply_delete(self, table, where)

    def transaction(self) -> "mutations.Transaction":
        """A rollback scope over this session's mutations.

        Mutations inside apply immediately; a clean context-manager
        exit commits (one circuit-cache version bump — the serving
        read-your-writes signal), an exception rolls back relation
        contents, minted variables, and replaced distributions.
        """
        return mutations.Transaction(self)

    def execute(self, text: str):
        """Run one SQL statement: SELECT, DML, or transaction control.

        Returns a lazy :class:`QueryResult` for ``SELECT``, a
        :class:`~repro.db.mutations.MutationResult` for DML, a
        :class:`~repro.db.mutations.Transaction` for ``BEGIN``, and
        ``None`` for ``COMMIT``/``ROLLBACK``.
        """
        statement = parse_statement(text, self.database)
        if isinstance(statement, ParsedQuery):
            return QueryResult(
                self.engine, self.database, parsed=statement,
                circuit_cache=self.circuits,
            )
        return statement.apply(self)

    def circuit(
        self,
        lineage: Union[DNF, Formula],
        *,
        max_nodes: Optional[int] = None,
    ) -> Circuit:
        """A compiled circuit for one lineage formula, session-cached.

        Exact compiles (``max_nodes=None``) hit and populate the
        session's :class:`~repro.circuits.CircuitCache`, so repeated
        requests — and subsequent warm ``confidences()`` calls on the
        same lineage — are free.
        """
        dnf = lineage.to_dnf() if isinstance(lineage, Formula) else lineage
        if max_nodes is None:
            cached = self.circuits.get(dnf)
            if cached is not None and cached.is_exact:
                return cached
        circuit = self.engine.compile_circuit(dnf, max_nodes=max_nodes)
        if max_nodes is None:
            self.circuits.put(dnf, circuit)
        return circuit

    def _store_partial_circuit(self, dnf: DNF, circuit: Circuit) -> None:
        """Engine write-back (``circuit_sink``): keep refinement
        progress.  ``exact_only=False`` because the whole point is
        storing partial circuits — resumable anytime state."""
        self.circuits.put(dnf, circuit, exact_only=False)

    def save_circuits(self, path: Optional[PathLike] = None) -> int:
        """Persist the session's compiled circuits; returns the count.

        ``path`` defaults to the session's ``persist_circuits`` store.
        The written file is the versioned, name-based format of
        :mod:`repro.circuits.serialize` — loadable by any process.
        """
        target = self._circuit_store if path is None else os.fspath(path)
        if target is None:
            raise ValueError(
                "no store path: pass path= or open the session with "
                "persist_circuits=/ProbDB.open(circuit_store=...)"
            )
        return self.circuits.save(target)

    def serving(
        self, *, store_name: str = "session", config: Optional[object] = None
    ) -> "object":
        """An async serving engine over this session's circuit cache.

        The returned :class:`repro.serving.ServingEngine` serves the
        live session cache under ``store_name`` (snapshots re-cut as
        the cache's mutation counter moves, so circuits compiled after
        this call are visible to the server) and degrades to this
        session's engine for cold lineages.  Wrap it in
        :class:`repro.serving.ServingApp` for the ASGI front-end or
        :class:`repro.serving.ServingClient` for in-process calls.
        """
        from ..serving import CircuitStoreService, ServingEngine

        stores = CircuitStoreService(self.registry)
        stores.add_cache(store_name, self.circuits)
        return ServingEngine(stores, self.engine, config)  # type: ignore[arg-type]

    def close(self) -> None:
        """Retire the worker pool and persist circuits (if configured)."""
        try:
            if self._circuit_store is not None:
                self.save_circuits()
        finally:
            # A failed save (unwritable path) must not leak the
            # engine-lifetime worker pool.
            self.engine.close()

    def __enter__(self) -> "ProbDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/entry counters of the shared decomposition cache."""
        return self.engine.cache.stats()

    def circuit_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/entry counters of the session circuit cache."""
        return self.circuits.stats()

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.database.relation_names()))
        return (
            f"ProbDB([{names}], epsilon={self.config.epsilon}, "
            f"error_kind={self.config.error_kind!r})"
        )
