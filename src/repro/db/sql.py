"""A small SQL front-end for ``conf()`` queries.

The paper presents queries in MayBMS-style SQL, e.g. the triangle motif
(Section VI.A)::

    select conf() as triangle_prob
    from E n1, E n2, E n3
    where n1.v = n2.u and n2.v = n3.v and
          n1.u = n3.u and n1.u < n2.u and n2.u < n3.v;

This module parses the conjunctive fragment of that language —
``SELECT [columns | conf()] FROM table [alias], … WHERE conjunction`` —
into a :class:`~repro.db.cq.ConjunctiveQuery` against a
:class:`~repro.db.database.Database`, and evaluates it with a pluggable
confidence method.

Supported WHERE predicates: equality between two columns (an equi-join),
equality with a literal (a selection), and the comparison operators
``< <= > >= <> !=`` between columns or against literals.  Aliases make
self-joins expressible, exactly as in the paper's motif queries.

Statements
----------
:func:`parse_statement` is the statement-level entry point: it parses the
probabilistic DML dialect —

* ``INSERT INTO t VALUES (...) [WITH PROBABILITY p]``
* ``UPDATE t SET col = lit, ... , PROBABILITY = p [WHERE ...]``
* ``DELETE FROM t [WHERE ...]``
* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK``

— into statement objects over the mutation API of
:mod:`repro.db.mutations`, and falls through to :func:`parse_conf_query`
for ``SELECT``.  ``ProbDB.execute`` dispatches the result.
"""

from __future__ import annotations

import re
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from .cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var
from .database import Database

__all__ = [
    "parse_conf_query",
    "parse_statement",
    "run_conf_query",
    "SqlSyntaxError",
    "ParsedQuery",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "TransactionStatement",
]


class SqlSyntaxError(ValueError):
    """Raised on queries outside the supported fragment."""


_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        (?P<string>'[^']*')
      | (?P<number>-?\d+(\.\d+)?)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),;.*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "as", "conf"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlSyntaxError(f"cannot tokenize near {remainder[:20]!r}")
        position = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                if kind == "word" and value.lower() in _KEYWORDS:
                    tokens.append(("keyword", value.lower()))
                else:
                    tokens.append((kind, value))
                break
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of query")
        self._index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            raise SqlSyntaxError(
                f"expected {value or kind}, found {token_value!r}"
            )
        return token_value

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if (
            token is not None
            and token[0] == kind
            and (value is None or token[1] == value)
        ):
            self._index += 1
            return True
        return False


_ColumnRef = Tuple[Optional[str], str]  # (alias or None, column)
_Literal = Tuple[str, Hashable]  # ("literal", value)


def _parse_column_or_literal(stream: _TokenStream):
    kind, value = stream.next()
    if kind == "string":
        return ("literal", value[1:-1])
    if kind == "number":
        number = float(value)
        if number.is_integer() and "." not in value:
            return ("literal", int(value))
        return ("literal", number)
    if kind == "word":
        if stream.accept("punct", "."):
            column = stream.expect("word")
            return (value, column)
        return (None, value)
    raise SqlSyntaxError(f"expected column or literal, found {value!r}")


class ParsedQuery:
    """The outcome of parsing: a CQ plus presentation metadata."""

    __slots__ = ("query", "select_columns", "wants_conf", "conf_alias")

    def __init__(
        self,
        query: ConjunctiveQuery,
        select_columns: List[str],
        wants_conf: bool,
        conf_alias: Optional[str],
    ) -> None:
        self.query = query
        self.select_columns = select_columns
        self.wants_conf = wants_conf
        self.conf_alias = conf_alias


def parse_conf_query(text: str, database: Database) -> ParsedQuery:
    """Parse a ``SELECT … FROM … WHERE …`` string into a conjunctive query.

    Relation schemas are resolved against ``database``; every table column
    becomes a query variable named ``<alias>.<column>``, and WHERE
    equalities between columns unify the corresponding variables.
    """
    stream = _TokenStream(_tokenize(text))
    stream.expect("keyword", "select")

    # ---- SELECT list ----------------------------------------------------
    select_items: List[Union[str, _ColumnRef]] = []
    wants_conf = False
    conf_alias: Optional[str] = None
    while True:
        if stream.accept("keyword", "conf"):
            stream.expect("punct", "(")
            stream.expect("punct", ")")
            wants_conf = True
            if stream.accept("keyword", "as"):
                conf_alias = stream.expect("word")
        else:
            ref = _parse_column_or_literal(stream)
            if ref[0] == "literal":
                raise SqlSyntaxError("literals are not selectable")
            select_items.append(ref)
            if stream.accept("keyword", "as"):
                stream.expect("word")  # output aliases are cosmetic
        if not stream.accept("punct", ","):
            break

    # ---- FROM list -------------------------------------------------------
    stream.expect("keyword", "from")
    from_entries: List[Tuple[str, str]] = []  # (table, alias)
    while True:
        table = stream.expect("word")
        if table not in database:
            raise SqlSyntaxError(f"unknown table {table!r}")
        alias = table
        token = stream.peek()
        if token is not None and token[0] == "word":
            alias = stream.next()[1]
        if any(existing == alias for _t, existing in from_entries):
            raise SqlSyntaxError(f"duplicate alias {alias!r}")
        from_entries.append((table, alias))
        if not stream.accept("punct", ","):
            break

    # ---- WHERE conjunction -------------------------------------------------
    predicates: List[Tuple[object, str, object]] = []
    if stream.accept("keyword", "where"):
        while True:
            left = _parse_column_or_literal(stream)
            op = stream.expect("op")
            right = _parse_column_or_literal(stream)
            predicates.append((left, op, right))
            if not stream.accept("keyword", "and"):
                break
    stream.accept("punct", ";")
    if stream.peek() is not None:
        raise SqlSyntaxError(
            f"unexpected trailing token {stream.peek()[1]!r}"
        )

    # ---- Build the conjunctive query ----------------------------------------
    # One variable per (alias, column); equality predicates merge variable
    # classes (union-find), after which each class maps to a single Var.
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(key: Tuple[str, str]) -> Tuple[str, str]:
        parent.setdefault(key, key)
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def unite(a: Tuple[str, str], b: Tuple[str, str]) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    alias_of: Dict[str, str] = {alias: table for table, alias in from_entries}
    columns_of: Dict[str, Sequence[str]] = {
        alias: database[table].attributes for table, alias in from_entries
    }

    def resolve(ref) -> Tuple[str, str]:
        alias, column = ref
        if alias is None:
            owners = [
                a for a, columns in columns_of.items() if column in columns
            ]
            if len(owners) != 1:
                raise SqlSyntaxError(
                    f"column {column!r} is "
                    + ("ambiguous" if owners else "unknown")
                )
            alias = owners[0]
        if alias not in alias_of:
            raise SqlSyntaxError(f"unknown alias {alias!r}")
        if column not in columns_of[alias]:
            raise SqlSyntaxError(
                f"table {alias_of[alias]!r} has no column {column!r}"
            )
        return alias, column

    constants: Dict[Tuple[str, str], Hashable] = {}
    inequalities_raw: List[Tuple[object, str, object]] = []
    for left, op, right in predicates:
        left_is_literal = left[0] == "literal"
        right_is_literal = right[0] == "literal"
        if op == "=":
            if left_is_literal and right_is_literal:
                raise SqlSyntaxError("literal = literal predicates unsupported")
            if left_is_literal or right_is_literal:
                column_ref = right if left_is_literal else left
                literal = left if left_is_literal else right
                constants[find(resolve(column_ref))] = literal[1]
            else:
                unite(resolve(left), resolve(right))
        else:
            inequalities_raw.append((left, op, right))

    # Assign one Var per class root (or a Const if the class is pinned).
    variables: Dict[Tuple[str, str], Var] = {}

    def term_for(ref) -> Union[Var, Const]:
        root = find(resolve(ref))
        if root in constants:
            return Const(constants[root])
        if root not in variables:
            variables[root] = Var(f"{root[0]}.{root[1]}")
        return variables[root]

    subgoals = []
    for table, alias in from_entries:
        terms = [term_for((alias, column)) for column in columns_of[alias]]
        subgoals.append(SubGoal(table, terms))

    op_map = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "<>": "!=",
              "!=": "!="}
    inequalities = []
    for left, op, right in inequalities_raw:
        left_term = (
            Const(left[1]) if left[0] == "literal" else term_for(left)
        )
        right_term = (
            Const(right[1]) if right[0] == "literal" else term_for(right)
        )
        if isinstance(left_term, Const) and isinstance(right_term, Const):
            raise SqlSyntaxError("literal-only comparisons are unsupported")
        inequalities.append(Inequality(left_term, op_map[op], right_term))

    head = []
    select_columns = []
    for ref in select_items:
        term = term_for(ref)
        if isinstance(term, Const):
            raise SqlSyntaxError(
                f"selected column {ref} is pinned to a constant"
            )
        head.append(term)
        select_columns.append(f"{ref[0]}.{ref[1]}" if ref[0] else ref[1])

    query = ConjunctiveQuery(head, subgoals, inequalities, name="sql")
    return ParsedQuery(query, select_columns, wants_conf, conf_alias)


# ----------------------------------------------------------------------
# Statement-level parsing (probabilistic DML + transactions)
# ----------------------------------------------------------------------
# DML keywords are matched as plain word tokens, case-insensitively —
# extending _KEYWORDS would reject tables or columns named "values",
# "set", or "probability" in existing SELECT queries.


def _word_matches(token: Optional[Tuple[str, str]], word: str) -> bool:
    return (
        token is not None
        and token[0] in ("word", "keyword")
        and token[1].lower() == word
    )


def _accept_word(stream: _TokenStream, word: str) -> bool:
    if _word_matches(stream.peek(), word):
        stream.next()
        return True
    return False


def _expect_word(stream: _TokenStream, word: str) -> None:
    token = stream.next()
    if not _word_matches(token, word):
        raise SqlSyntaxError(
            f"expected {word.upper()}, found {token[1]!r}"
        )


def _parse_literal(stream: _TokenStream) -> Hashable:
    kind, value = stream.next()
    if kind == "string":
        return value[1:-1]
    if kind == "number":
        number = float(value)
        if number.is_integer() and "." not in value:
            return int(value)
        return number
    raise SqlSyntaxError(f"expected a literal, found {value!r}")


def _parse_number(stream: _TokenStream) -> float:
    kind, value = stream.next()
    if kind != "number":
        raise SqlSyntaxError(f"expected a number, found {value!r}")
    return float(value)


def _parse_dml_where(
    stream: _TokenStream,
) -> Optional[List[Tuple[str, str, Hashable]]]:
    """``WHERE col op lit [AND ...]`` into mutation-API triples."""
    if not stream.accept("keyword", "where"):
        return None
    conditions: List[Tuple[str, str, Hashable]] = []
    while True:
        column = stream.expect("word")
        op = stream.expect("op")
        literal = _parse_literal(stream)
        conditions.append((column, op, literal))
        if not stream.accept("keyword", "and"):
            break
    return conditions


def _finish_statement(stream: _TokenStream) -> None:
    stream.accept("punct", ";")
    token = stream.peek()
    if token is not None:
        raise SqlSyntaxError(f"unexpected trailing token {token[1]!r}")


class InsertStatement:
    """``INSERT INTO table VALUES (...) [WITH PROBABILITY p]``."""

    __slots__ = ("table", "row", "probability")

    def __init__(
        self, table: str, row: Tuple[Hashable, ...],
        probability: Optional[float],
    ) -> None:
        self.table = table
        self.row = row
        self.probability = probability

    def apply(self, session):
        return session.insert(
            self.table, self.row, probability=self.probability
        )

    def __repr__(self) -> str:
        return (
            f"InsertStatement({self.table!r}, {self.row!r}, "
            f"p={self.probability})"
        )


class UpdateStatement:
    """``UPDATE table SET ... [WHERE ...]``; SET items are column
    assignments and/or one ``PROBABILITY = p``."""

    __slots__ = ("table", "values", "probability", "where")

    def __init__(
        self,
        table: str,
        values: Optional[Dict[str, Hashable]],
        probability: Optional[float],
        where: Optional[List[Tuple[str, str, Hashable]]],
    ) -> None:
        self.table = table
        self.values = values
        self.probability = probability
        self.where = where

    def apply(self, session):
        return session.update(
            self.table,
            values=self.values,
            probability=self.probability,
            where=self.where,
        )

    def __repr__(self) -> str:
        return (
            f"UpdateStatement({self.table!r}, values={self.values!r}, "
            f"p={self.probability}, where={self.where!r})"
        )


class DeleteStatement:
    """``DELETE FROM table [WHERE ...]``."""

    __slots__ = ("table", "where")

    def __init__(
        self, table: str,
        where: Optional[List[Tuple[str, str, Hashable]]],
    ) -> None:
        self.table = table
        self.where = where

    def apply(self, session):
        return session.delete(self.table, where=self.where)

    def __repr__(self) -> str:
        return f"DeleteStatement({self.table!r}, where={self.where!r})"


class TransactionStatement:
    """``BEGIN`` / ``COMMIT`` / ``ROLLBACK``."""

    __slots__ = ("action",)

    def __init__(self, action: str) -> None:
        self.action = action

    def apply(self, session):
        if self.action == "begin":
            return session.transaction()
        txn = session._txn
        if txn is None:
            from .mutations import MutationError

            raise MutationError(
                f"{self.action.upper()} outside a transaction"
            )
        if self.action == "commit":
            txn.commit()
        else:
            txn.rollback()
        return None

    def __repr__(self) -> str:
        return f"TransactionStatement({self.action!r})"


Statement = Union[
    ParsedQuery,
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    TransactionStatement,
]


def _require_table(database: Database, table: str) -> str:
    if table not in database:
        raise SqlSyntaxError(f"unknown table {table!r}")
    return table


def parse_statement(text: str, database: Database) -> Statement:
    """Parse one SQL statement: DML, transaction control, or SELECT.

    ``SELECT`` delegates to :func:`parse_conf_query` (this is the
    statement-level home the migration table points at); everything
    else parses into a statement object whose ``apply(session)`` runs
    it through the mutation API of :mod:`repro.db.mutations`.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise SqlSyntaxError("empty statement")
    head = tokens[0][1].lower() if tokens[0][0] in ("word", "keyword") else ""
    if head not in ("insert", "update", "delete", "begin", "commit",
                    "rollback"):
        return parse_conf_query(text, database)
    stream = _TokenStream(tokens)

    if head in ("begin", "commit", "rollback"):
        _expect_word(stream, head)
        # Accept the optional noise words of the common spellings.
        if head == "begin":
            _accept_word(stream, "transaction")
        _finish_statement(stream)
        return TransactionStatement(head)

    if head == "insert":
        _expect_word(stream, "insert")
        _expect_word(stream, "into")
        table = _require_table(database, stream.expect("word"))
        _expect_word(stream, "values")
        stream.expect("punct", "(")
        row: List[Hashable] = []
        while True:
            row.append(_parse_literal(stream))
            if not stream.accept("punct", ","):
                break
        stream.expect("punct", ")")
        probability: Optional[float] = None
        if _accept_word(stream, "with"):
            _expect_word(stream, "probability")
            probability = _parse_number(stream)
        _finish_statement(stream)
        return InsertStatement(table, tuple(row), probability)

    if head == "delete":
        _expect_word(stream, "delete")
        _expect_word(stream, "from")
        table = _require_table(database, stream.expect("word"))
        where = _parse_dml_where(stream)
        _finish_statement(stream)
        return DeleteStatement(table, where)

    # UPDATE table SET item {, item} [WHERE ...]
    _expect_word(stream, "update")
    table = _require_table(database, stream.expect("word"))
    _expect_word(stream, "set")
    values: Dict[str, Hashable] = {}
    probability = None
    while True:
        if _word_matches(stream.peek(), "probability"):
            stream.next()
            stream.accept("op", "=")
            if probability is not None:
                raise SqlSyntaxError("PROBABILITY assigned twice")
            probability = _parse_number(stream)
        else:
            column = stream.expect("word")
            stream.expect("op", "=")
            if column in values:
                raise SqlSyntaxError(f"column {column!r} assigned twice")
            values[column] = _parse_literal(stream)
        if not stream.accept("punct", ","):
            break
    where = _parse_dml_where(stream)
    _finish_statement(stream)
    return UpdateStatement(table, values or None, probability, where)


def run_conf_query(
    text: str,
    database: Database,
    *,
    epsilon: Optional[float] = None,
    error_kind: Optional[str] = None,
    engine=None,
) -> List[Tuple[Tuple[Hashable, ...], Optional[float]]]:
    """Deprecated shim: use ``ProbDB(database).sql(text).confidences()``.

    Delegates to the :class:`repro.db.session.ProbDB` session path.
    Returns ``(answer_tuple, confidence)`` pairs as before; the
    confidence is ``None`` when the query does not request ``conf()``.
    With neither ``engine`` nor overrides the computation is exact
    (``ε = 0``, absolute).
    """
    import warnings

    warnings.warn(
        "run_conf_query() is deprecated; use "
        "ProbDB(database).sql(text).confidences(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import EngineConfig
    from .session import ProbDB

    if engine is not None:
        session = ProbDB(database, engine=engine)
    else:
        session = ProbDB(
            database,
            EngineConfig(
                epsilon=0.0 if epsilon is None else epsilon,
                error_kind=(
                    "absolute" if error_kind is None else error_kind
                ),
            ),
        )
    result = session.sql(text)
    if not result.wants_conf:
        return [(values, None) for values in result.answers()]
    return [
        (values, outcome.probability)
        for values, outcome in result.confidences(
            epsilon, error_kind=error_kind
        )
    ]
