"""A small SQL front-end for ``conf()`` queries.

The paper presents queries in MayBMS-style SQL, e.g. the triangle motif
(Section VI.A)::

    select conf() as triangle_prob
    from E n1, E n2, E n3
    where n1.v = n2.u and n2.v = n3.v and
          n1.u = n3.u and n1.u < n2.u and n2.u < n3.v;

This module parses the conjunctive fragment of that language —
``SELECT [columns | conf()] FROM table [alias], … WHERE conjunction`` —
into a :class:`~repro.db.cq.ConjunctiveQuery` against a
:class:`~repro.db.database.Database`, and evaluates it with a pluggable
confidence method.

Supported WHERE predicates: equality between two columns (an equi-join),
equality with a literal (a selection), and the comparison operators
``< <= > >= <> !=`` between columns or against literals.  Aliases make
self-joins expressible, exactly as in the paper's motif queries.
"""

from __future__ import annotations

import re
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from .cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var
from .database import Database

__all__ = ["parse_conf_query", "run_conf_query", "SqlSyntaxError", "ParsedQuery"]


class SqlSyntaxError(ValueError):
    """Raised on queries outside the supported fragment."""


_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        (?P<string>'[^']*')
      | (?P<number>-?\d+(\.\d+)?)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),;.*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "as", "conf"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlSyntaxError(f"cannot tokenize near {remainder[:20]!r}")
        position = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                if kind == "word" and value.lower() in _KEYWORDS:
                    tokens.append(("keyword", value.lower()))
                else:
                    tokens.append((kind, value))
                break
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of query")
        self._index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            raise SqlSyntaxError(
                f"expected {value or kind}, found {token_value!r}"
            )
        return token_value

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if (
            token is not None
            and token[0] == kind
            and (value is None or token[1] == value)
        ):
            self._index += 1
            return True
        return False


_ColumnRef = Tuple[Optional[str], str]  # (alias or None, column)
_Literal = Tuple[str, Hashable]  # ("literal", value)


def _parse_column_or_literal(stream: _TokenStream):
    kind, value = stream.next()
    if kind == "string":
        return ("literal", value[1:-1])
    if kind == "number":
        number = float(value)
        if number.is_integer() and "." not in value:
            return ("literal", int(value))
        return ("literal", number)
    if kind == "word":
        if stream.accept("punct", "."):
            column = stream.expect("word")
            return (value, column)
        return (None, value)
    raise SqlSyntaxError(f"expected column or literal, found {value!r}")


class ParsedQuery:
    """The outcome of parsing: a CQ plus presentation metadata."""

    __slots__ = ("query", "select_columns", "wants_conf", "conf_alias")

    def __init__(
        self,
        query: ConjunctiveQuery,
        select_columns: List[str],
        wants_conf: bool,
        conf_alias: Optional[str],
    ) -> None:
        self.query = query
        self.select_columns = select_columns
        self.wants_conf = wants_conf
        self.conf_alias = conf_alias


def parse_conf_query(text: str, database: Database) -> ParsedQuery:
    """Parse a ``SELECT … FROM … WHERE …`` string into a conjunctive query.

    Relation schemas are resolved against ``database``; every table column
    becomes a query variable named ``<alias>.<column>``, and WHERE
    equalities between columns unify the corresponding variables.
    """
    stream = _TokenStream(_tokenize(text))
    stream.expect("keyword", "select")

    # ---- SELECT list ----------------------------------------------------
    select_items: List[Union[str, _ColumnRef]] = []
    wants_conf = False
    conf_alias: Optional[str] = None
    while True:
        if stream.accept("keyword", "conf"):
            stream.expect("punct", "(")
            stream.expect("punct", ")")
            wants_conf = True
            if stream.accept("keyword", "as"):
                conf_alias = stream.expect("word")
        else:
            ref = _parse_column_or_literal(stream)
            if ref[0] == "literal":
                raise SqlSyntaxError("literals are not selectable")
            select_items.append(ref)
            if stream.accept("keyword", "as"):
                stream.expect("word")  # output aliases are cosmetic
        if not stream.accept("punct", ","):
            break

    # ---- FROM list -------------------------------------------------------
    stream.expect("keyword", "from")
    from_entries: List[Tuple[str, str]] = []  # (table, alias)
    while True:
        table = stream.expect("word")
        if table not in database:
            raise SqlSyntaxError(f"unknown table {table!r}")
        alias = table
        token = stream.peek()
        if token is not None and token[0] == "word":
            alias = stream.next()[1]
        if any(existing == alias for _t, existing in from_entries):
            raise SqlSyntaxError(f"duplicate alias {alias!r}")
        from_entries.append((table, alias))
        if not stream.accept("punct", ","):
            break

    # ---- WHERE conjunction -------------------------------------------------
    predicates: List[Tuple[object, str, object]] = []
    if stream.accept("keyword", "where"):
        while True:
            left = _parse_column_or_literal(stream)
            op = stream.expect("op")
            right = _parse_column_or_literal(stream)
            predicates.append((left, op, right))
            if not stream.accept("keyword", "and"):
                break
    stream.accept("punct", ";")
    if stream.peek() is not None:
        raise SqlSyntaxError(
            f"unexpected trailing token {stream.peek()[1]!r}"
        )

    # ---- Build the conjunctive query ----------------------------------------
    # One variable per (alias, column); equality predicates merge variable
    # classes (union-find), after which each class maps to a single Var.
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(key: Tuple[str, str]) -> Tuple[str, str]:
        parent.setdefault(key, key)
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def unite(a: Tuple[str, str], b: Tuple[str, str]) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    alias_of: Dict[str, str] = {alias: table for table, alias in from_entries}
    columns_of: Dict[str, Sequence[str]] = {
        alias: database[table].attributes for table, alias in from_entries
    }

    def resolve(ref) -> Tuple[str, str]:
        alias, column = ref
        if alias is None:
            owners = [
                a for a, columns in columns_of.items() if column in columns
            ]
            if len(owners) != 1:
                raise SqlSyntaxError(
                    f"column {column!r} is "
                    + ("ambiguous" if owners else "unknown")
                )
            alias = owners[0]
        if alias not in alias_of:
            raise SqlSyntaxError(f"unknown alias {alias!r}")
        if column not in columns_of[alias]:
            raise SqlSyntaxError(
                f"table {alias_of[alias]!r} has no column {column!r}"
            )
        return alias, column

    constants: Dict[Tuple[str, str], Hashable] = {}
    inequalities_raw: List[Tuple[object, str, object]] = []
    for left, op, right in predicates:
        left_is_literal = left[0] == "literal"
        right_is_literal = right[0] == "literal"
        if op == "=":
            if left_is_literal and right_is_literal:
                raise SqlSyntaxError("literal = literal predicates unsupported")
            if left_is_literal or right_is_literal:
                column_ref = right if left_is_literal else left
                literal = left if left_is_literal else right
                constants[find(resolve(column_ref))] = literal[1]
            else:
                unite(resolve(left), resolve(right))
        else:
            inequalities_raw.append((left, op, right))

    # Assign one Var per class root (or a Const if the class is pinned).
    variables: Dict[Tuple[str, str], Var] = {}

    def term_for(ref) -> Union[Var, Const]:
        root = find(resolve(ref))
        if root in constants:
            return Const(constants[root])
        if root not in variables:
            variables[root] = Var(f"{root[0]}.{root[1]}")
        return variables[root]

    subgoals = []
    for table, alias in from_entries:
        terms = [term_for((alias, column)) for column in columns_of[alias]]
        subgoals.append(SubGoal(table, terms))

    op_map = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "<>": "!=",
              "!=": "!="}
    inequalities = []
    for left, op, right in inequalities_raw:
        left_term = (
            Const(left[1]) if left[0] == "literal" else term_for(left)
        )
        right_term = (
            Const(right[1]) if right[0] == "literal" else term_for(right)
        )
        if isinstance(left_term, Const) and isinstance(right_term, Const):
            raise SqlSyntaxError("literal-only comparisons are unsupported")
        inequalities.append(Inequality(left_term, op_map[op], right_term))

    head = []
    select_columns = []
    for ref in select_items:
        term = term_for(ref)
        if isinstance(term, Const):
            raise SqlSyntaxError(
                f"selected column {ref} is pinned to a constant"
            )
        head.append(term)
        select_columns.append(f"{ref[0]}.{ref[1]}" if ref[0] else ref[1])

    query = ConjunctiveQuery(head, subgoals, inequalities, name="sql")
    return ParsedQuery(query, select_columns, wants_conf, conf_alias)


def run_conf_query(
    text: str,
    database: Database,
    *,
    epsilon: Optional[float] = None,
    error_kind: Optional[str] = None,
    engine=None,
) -> List[Tuple[Tuple[Hashable, ...], Optional[float]]]:
    """Deprecated shim: use ``ProbDB(database).sql(text).confidences()``.

    Delegates to the :class:`repro.db.session.ProbDB` session path.
    Returns ``(answer_tuple, confidence)`` pairs as before; the
    confidence is ``None`` when the query does not request ``conf()``.
    With neither ``engine`` nor overrides the computation is exact
    (``ε = 0``, absolute).
    """
    import warnings

    warnings.warn(
        "run_conf_query() is deprecated; use "
        "ProbDB(database).sql(text).confidences(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import EngineConfig
    from .session import ProbDB

    if engine is not None:
        session = ProbDB(database, engine=engine)
    else:
        session = ProbDB(
            database,
            EngineConfig(
                epsilon=0.0 if epsilon is None else epsilon,
                error_kind=(
                    "absolute" if error_kind is None else error_kind
                ),
            ),
        )
    result = session.sql(text)
    if not result.wants_conf:
        return [(values, None) for values in result.answers()]
    return [
        (values, outcome.probability)
        for values, outcome in result.confidences(
            epsilon, error_kind=error_kind
        )
    ]
