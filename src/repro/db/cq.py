"""Conjunctive queries and the paper's tractability classifications.

Queries are written Datalog-style::

    q(D) :- R1(A, B, C), R2(A, B), R3(A, D)

as :class:`ConjunctiveQuery` objects over :class:`Var`/:class:`Const`
terms, optionally extended with inequality predicates (the IQ queries of
Definition 6.6).

Classifiers implemented here:

* :meth:`ConjunctiveQuery.is_hierarchical` — Definition 6.1: for any two
  non-head variables, their subgoal sets are disjoint or one contains the
  other.  Hierarchical queries without self-joins are exactly the known
  tractable conjunctive queries on tuple-independent databases.
* :meth:`ConjunctiveQuery.has_self_join` — repeated relation names.
* :meth:`ConjunctiveQuery.is_iq` — Definition 6.6: distinct
  tuple-independent relations, pairwise-disjoint non-head variable sets
  (no equality joins), and inequalities with the max-one property
  (Definition 6.5).
* :func:`hard_pattern_tractable` — Theorem 6.4: the ``R(X), S(X,Y), T(Y)``
  pattern is tractable when every connected component of S's bipartite
  graph is functional (S probabilistic or deterministic) or complete
  (S deterministic).
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.formulas import TrueNode
from .database import Database
from .relation import Relation

__all__ = [
    "Var",
    "Const",
    "Term",
    "SubGoal",
    "Inequality",
    "ConjunctiveQuery",
    "hard_pattern_tractable",
]


class Var:
    """A query variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return self.name


class Const:
    """A constant term."""

    __slots__ = ("value",)

    def __init__(self, value: Hashable) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]

_COMPARATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "!=": lambda a, b: a != b,
}


class SubGoal:
    """An atom ``R(t₁, …, t_k)`` of the query body."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Sequence[Term]) -> None:
        self.relation = relation
        self.terms = tuple(terms)

    def variables(self) -> List[Var]:
        """Variables in term order, duplicates removed."""
        seen: List[Var] = []
        for term in self.terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return seen

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({inner})"


class Inequality:
    """A predicate ``left op right`` with ``op ∈ {<, <=, >, >=, !=}``."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Term, op: str, right: Term) -> None:
        if op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def variables(self) -> List[Var]:
        result = []
        for term in (self.left, self.right):
            if isinstance(term, Var):
                result.append(term)
        return result

    def holds(self, binding: Dict[Var, Hashable]) -> bool:
        left = (
            binding[self.left] if isinstance(self.left, Var) else self.left.value
        )
        right = (
            binding[self.right]
            if isinstance(self.right, Var)
            else self.right.value
        )
        return _COMPARATORS[self.op](left, right)

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


class ConjunctiveQuery:
    """``q(head) :- subgoals, inequalities``."""

    __slots__ = ("name", "head", "subgoals", "inequalities")

    def __init__(
        self,
        head: Sequence[Var],
        subgoals: Sequence[SubGoal],
        inequalities: Sequence[Inequality] = (),
        name: str = "q",
    ) -> None:
        if not subgoals:
            raise ValueError("a conjunctive query needs at least one subgoal")
        self.name = name
        self.head = tuple(head)
        self.subgoals = tuple(subgoals)
        self.inequalities = tuple(inequalities)
        body_vars = self.variables()
        for var in self.head:
            if var not in body_vars:
                raise ValueError(f"head variable {var!r} not in query body")
        for inequality in self.inequalities:
            for var in inequality.variables():
                if var not in body_vars:
                    raise ValueError(
                        f"inequality variable {var!r} not in query body"
                    )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def variables(self) -> List[Var]:
        seen: List[Var] = []
        for subgoal in self.subgoals:
            for var in subgoal.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def non_head_variables(self) -> List[Var]:
        return [var for var in self.variables() if var not in self.head]

    def is_boolean(self) -> bool:
        return not self.head

    def subgoal_set(self, var: Var) -> FrozenSet[int]:
        """Indices of the subgoals in which ``var`` occurs (sg(var))."""
        return frozenset(
            index
            for index, subgoal in enumerate(self.subgoals)
            if var in subgoal.variables()
        )

    def has_self_join(self) -> bool:
        names = [subgoal.relation for subgoal in self.subgoals]
        return len(names) != len(set(names))

    # ------------------------------------------------------------------
    # Classifications
    # ------------------------------------------------------------------
    def is_hierarchical(self) -> bool:
        """Definition 6.1: the subgoal sets of any two non-head variables
        are disjoint or one contains the other."""
        non_head = self.non_head_variables()
        sets = {var: self.subgoal_set(var) for var in non_head}
        for left, right in itertools.combinations(non_head, 2):
            a, b = sets[left], sets[right]
            if not (a <= b or b <= a or a.isdisjoint(b)):
                return False
        return True

    def _per_subgoal_variable_sets(self) -> List[Set[Var]]:
        """Non-head variable sets ``xᵢ − x₀`` per subgoal."""
        head = set(self.head)
        return [
            {var for var in subgoal.variables() if var not in head}
            for subgoal in self.subgoals
        ]

    def has_max_one_property(self) -> bool:
        """Definition 6.5 over the per-subgoal non-head variable sets:
        at most one variable from each set occurs in inequalities with
        variables of other sets."""
        groups = self._per_subgoal_variable_sets()

        def group_of(var: Var) -> Optional[int]:
            for index, group in enumerate(groups):
                if var in group:
                    return index
            return None

        crossing: Dict[int, Set[Var]] = {}
        for inequality in self.inequalities:
            variables = inequality.variables()
            if len(variables) == 2:
                left_group = group_of(variables[0])
                right_group = group_of(variables[1])
                if left_group is None or right_group is None:
                    continue  # head variables are exempt
                if left_group == right_group:
                    return False  # intra-set inequality breaks the pattern
                crossing.setdefault(left_group, set()).add(variables[0])
                crossing.setdefault(right_group, set()).add(variables[1])
        return all(len(used) <= 1 for used in crossing.values())

    def is_iq(self) -> bool:
        """Definition 6.6: an IQ query.

        Distinct relations (no self-joins), pairwise disjoint non-head
        variable sets (so all joins are inequality joins), and the
        max-one property on the inequalities.
        """
        if self.has_self_join():
            return False
        groups = self._per_subgoal_variable_sets()
        for left, right in itertools.combinations(groups, 2):
            if left & right:
                return False
        return self.has_max_one_property()

    def __repr__(self) -> str:
        head = ", ".join(repr(var) for var in self.head)
        body = ", ".join(repr(subgoal) for subgoal in self.subgoals)
        if self.inequalities:
            body += ", " + ", ".join(repr(i) for i in self.inequalities)
        return f"{self.name}({head}) :- {body}"


# ----------------------------------------------------------------------
# Theorem 6.4: tractable instances of the hard pattern R(X), S(X,Y), T(Y)
# ----------------------------------------------------------------------
def hard_pattern_tractable(
    s_relation: Relation,
    x_attribute: str,
    y_attribute: str,
) -> bool:
    """Check the Theorem 6.4 conditions on the middle table ``S``.

    The bipartite graph of ``S`` has the distinct X-values and Y-values as
    node sets and one edge per tuple.  The pattern is tractable when every
    connected component is

    * **functional** — no two X-nodes share a Y-node, or no two Y-nodes
      share an X-node (``S`` probabilistic or deterministic); or
    * **complete** — every X-node connects to every Y-node of the
      component — and all of the component's tuples are deterministic.
    """
    x_index = s_relation.attribute_index(x_attribute)
    y_index = s_relation.attribute_index(y_attribute)

    # Union-find over ('x', value) / ('y', value) nodes.
    parent: Dict[Tuple[str, Hashable], Tuple[str, Hashable]] = {}

    def find(node: Tuple[str, Hashable]) -> Tuple[str, Hashable]:
        parent.setdefault(node, node)
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def unite(a: Tuple[str, Hashable], b: Tuple[str, Hashable]) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    edges: List[Tuple[Hashable, Hashable, bool]] = []
    for values, lineage in s_relation.rows:
        x_value, y_value = values[x_index], values[y_index]
        deterministic = isinstance(lineage, TrueNode)
        edges.append((x_value, y_value, deterministic))
        unite(("x", x_value), ("y", y_value))

    components: Dict[
        Tuple[str, Hashable], List[Tuple[Hashable, Hashable, bool]]
    ] = {}
    for x_value, y_value, deterministic in edges:
        root = find(("x", x_value))
        components.setdefault(root, []).append(
            (x_value, y_value, deterministic)
        )

    for component_edges in components.values():
        x_degree: Dict[Hashable, Set[Hashable]] = {}
        y_degree: Dict[Hashable, Set[Hashable]] = {}
        all_deterministic = True
        for x_value, y_value, deterministic in component_edges:
            x_degree.setdefault(x_value, set()).add(y_value)
            y_degree.setdefault(y_value, set()).add(x_value)
            all_deterministic = all_deterministic and deterministic
        functional = all(
            len(neighbours) == 1 for neighbours in x_degree.values()
        ) or all(len(neighbours) == 1 for neighbours in y_degree.values())
        if functional:
            continue
        complete = len(component_edges) >= len(x_degree) * len(y_degree) and (
            len({(x, y) for x, y, _d in component_edges})
            == len(x_degree) * len(y_degree)
        )
        if complete and all_deterministic:
            continue
        return False
    return True
