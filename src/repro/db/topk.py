"""Top-k answer ranking by confidence, driven by anytime bounds.

Ranking answers by confidence is the motivating application of MystiQ's
top-k work (Ré, Dalvi, Suciu; cited as [23] in the paper).  The d-tree
algorithm's *certified intervals* enable the classical interval-pruning
strategy: keep per-answer lower/upper bounds, repeatedly refine the most
ambiguous answer, and stop as soon as the k best answers provably
dominate the rest — usually long before any probability is computed
exactly.

:func:`rank_answers` implements that stopping rule as a thin consumer of
:class:`repro.engine.BatchComputation` — the same batched anytime
machinery behind ``ConfidenceEngine.compute_many`` and the session
façade's ``QueryResult.bounds()``; the refinement loop itself lives
there.  The preferred entry point is
``ProbDB(database).query(cq).top_k(k)``
(:class:`repro.db.session.ProbDB`); :func:`top_k_answers` remains as a
deprecated free-function shim.
"""

from __future__ import annotations

import warnings
from typing import Hashable, List, Optional, Sequence, Tuple

from ..core.dnf import DNF
from ..core.orders import VariableSelector
from ..core.variables import VariableRegistry, variable_name

__all__ = ["rank_answers", "top_k_answers", "RankedAnswer"]

#: Default global work ceiling when neither the call nor the engine's
#: :class:`~repro.engine.EngineConfig` bounds the ranking.
DEFAULT_MAX_TOTAL_STEPS = 200_000

Answer = Tuple[Tuple[Hashable, ...], DNF]


class RankedAnswer:
    """One ranked answer with its certified probability interval."""

    __slots__ = ("values", "lower", "upper", "steps_spent")

    def __init__(
        self,
        values: Tuple[Hashable, ...],
        lower: float,
        upper: float,
        steps_spent: int,
    ) -> None:
        self.values = values
        self.lower = lower
        self.upper = upper
        self.steps_spent = steps_spent

    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0

    def __repr__(self) -> str:
        return (
            f"RankedAnswer({self.values!r}, "
            f"[{self.lower:.4g}, {self.upper:.4g}])"
        )


def rank_answers(
    engine,
    answers: Sequence[Answer],
    k: int,
    *,
    initial_steps: Optional[int] = None,
    step_growth: Optional[int] = None,
    max_total_steps: Optional[int] = None,
    separation: float = 0.0,
    workers: Optional[int] = None,
    executor_kind: Optional[str] = None,
    guided: Optional[bool] = None,
) -> List[RankedAnswer]:
    """The k most probable answers, certified by interval separation.

    Parameters
    ----------
    engine:
        The :class:`repro.engine.ConfidenceEngine` every refinement
        routes through (sharing its decomposition cache).
    answers:
        ``(answer_values, lineage_dnf)`` pairs, e.g. from
        :func:`repro.db.engine.evaluate_to_dnf`.
    k:
        How many answers to return (all answers when ``k`` ≥ input size).
    initial_steps / step_growth:
        Refinement schedule (engine-config defaults when omitted): each
        round, the answer whose interval blocks the ranking gets its
        budget multiplied by ``step_growth``.
    max_total_steps:
        Global work ceiling (engine config, then 200 000, when omitted);
        on exhaustion the current best-effort ranking is returned
        (intervals still sound, separation not certified).
    separation:
        Required gap between the k-th lower bound and the (k+1)-th upper
        bound; zero certifies a weak ordering (ties broken by midpoint).
    workers / executor_kind:
        Parallel execution knobs (engine-config defaults when omitted):
        with ``workers > 1`` refinement runs on a sharded worker pool
        (:mod:`repro.engine_parallel`), each ranking round refining the
        widest boundary-straddling intervals concurrently.
    guided:
        Refinement-target selection.  ``True`` (or the ``None``/auto
        default) consults :meth:`repro.circuits.Circuit.gradients` on
        candidates that have a refinable partial circuit and refines
        the one whose expansion maximally narrows the k-vs-(k+1)
        separation gap; candidates without circuits — and ``False`` —
        use the classic widest-interval schedule.  Both schedules
        certify the same ranking; guidance only changes how much work
        certification takes.

    Returns
    -------
    list[RankedAnswer]
        The top-k answers in descending (certified) order of probability.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    answers = list(answers)
    if max_total_steps is None:
        max_total_steps = engine.config.max_total_steps
    if max_total_steps is None:
        max_total_steps = DEFAULT_MAX_TOTAL_STEPS

    # ε = 0: refinement drives every interval toward the exact value;
    # the separation check below stops as soon as the ranking is proven.
    batch = engine.refine_many(
        [dnf for _values, dnf in answers],
        epsilon=0.0,
        initial_steps=initial_steps,
        step_growth=step_growth,
        workers=workers,
        executor_kind=executor_kind,
    )
    try:
        return _rank_batch(
            batch, answers, k, max_total_steps, separation,
            guided=guided is None or guided,
        )
    finally:
        # Release a sharded batch's reference to the engine-lifetime
        # worker pool.  The pool itself survives on the engine (warm
        # for the next ranking); ``engine.close()`` retires it, with a
        # GC finalizer as the backstop for throwaway engines.
        close = getattr(batch, "close", None)
        if close is not None:
            close()


def _refinement_circuit(batch, index):
    """A refinable partial circuit for a ranking candidate, if any.

    Looks at the candidate's own result first (circuit-refine rounds
    carry their expansion progress), then the engine's session-wired
    ``circuit_source``.
    """
    result = batch.results[index]
    candidates = [result.circuit]
    source = getattr(batch.engine, "circuit_source", None)
    if source is not None:
        candidates.append(source(batch.dnfs[index]))
    for circuit in candidates:
        if (
            circuit is not None
            and not circuit.is_exact
            and circuit.refinable
            and not circuit.conditioned
        ):
            return circuit
    return None


def _gradient_target(
    batch, order, boundary, k, kth_lower, best_excluded_upper, separation
):
    """The boundary candidate whose refinement most narrows the gap.

    Every boundary straddler is scored by *relevance* — how far its
    blocking bound sits from the certification threshold (a top-k
    member blocks via its lower bound, an excluded answer via its
    upper), capped at its interval width since one round cannot move a
    bound further than that.  Candidates with a refinable partial
    circuit additionally discount relevance by expected *progress*: the
    fraction of the interval the widest residual leaf accounts for,
    weighted by the total :meth:`~repro.circuits.Circuit.gradients`
    magnitude over that leaf's variables (how hard expanding the leaf
    can move the root).  Ties fall to the widest interval, so with no
    usable gradient signal the choice degenerates to the classic
    widest-interval schedule; with no circuits at all ``None`` is
    returned and the caller takes that schedule directly.
    """
    topk = set(order[:k])
    best_index = None
    best_key = (-1.0, -1.0)
    saw_circuit = False
    for index in boundary:
        result = batch.results[index]
        if index in topk:
            # A top-k member blocks via its lower bound: it must rise
            # above the best excluded upper (plus separation).
            relevance = (best_excluded_upper + separation) - result.lower
        else:
            # An excluded member blocks via its upper bound: it must
            # drop below the k-th lower (minus separation).
            relevance = result.upper - (kth_lower - separation)
        relevance = min(relevance, result.width())
        if relevance <= 0.0:
            continue
        effectiveness = 1.0  # a d-tree rerun attacks the whole interval
        circuit = _refinement_circuit(batch, index)
        if circuit is not None:
            slot = circuit.widest_residual()
            if slot is not None:
                saw_circuit = True
                low, high, vids = circuit.residuals[slot]
                width = result.width() or 1.0
                gradients = circuit.gradients()
                influence = sum(
                    abs(gradients.get(variable_name(vid), 0.0))
                    for vid in vids
                )
                effectiveness = min(
                    1.0, (high - low) / width * (1.0 + influence)
                )
        key = (relevance * effectiveness, result.width())
        if key > best_key:
            best_key = key
            best_index = index
    if not saw_circuit:
        return None
    return best_index


def _rank_batch(batch, answers, k, max_total_steps, separation,
                *, guided=True):
    values = [answer_values for answer_values, _dnf in answers]
    results = batch.results

    def sort_key(index: int) -> Tuple[float, float]:
        # Optimistic value first; the ranking is certified when the k-th
        # pessimistic value dominates every excluded optimistic one.
        return (-results[index].upper, -results[index].lower)

    def ranked(index: int) -> RankedAnswer:
        result = results[index]
        return RankedAnswer(
            values[index], result.lower, result.upper, result.steps
        )

    order = list(range(len(answers)))
    if k >= len(order):
        order.sort(key=sort_key)
        return [ranked(index) for index in order]

    while True:
        order.sort(key=sort_key)
        kth_lower = min(results[index].lower for index in order[:k])
        best_excluded_upper = max(
            results[index].upper for index in order[k:]
        )
        if kth_lower >= best_excluded_upper + separation:
            break

        # Refine the widest interval among the answers straddling the
        # boundary (both sides can be at fault).  ``step(boundary)``
        # refines exactly the widest one on a serial batch and the
        # widest-per-shard on a sharded batch — same prioritized
        # schedule either way.
        boundary = [
            index
            for index in order
            if results[index].upper > kth_lower - separation
            and results[index].lower < best_excluded_upper + separation
            and not results[index].converged
        ]
        if (
            not boundary
            or batch.total_steps >= max_total_steps
            or batch.out_of_time()
        ):
            break  # fully converged ties or out of budget: best effort
        progressed = False
        if guided:
            # Gradient guidance: spend the round on the candidate whose
            # circuit says refinement most narrows the k-vs-(k+1) gap,
            # instead of blindly on the widest straddler.
            target = _gradient_target(
                batch, order, boundary, k,
                kth_lower, best_excluded_upper, separation,
            )
            if target is not None:
                before_steps = batch.total_steps
                before_width = results[target].width()
                batch.refine(target)
                progressed = (
                    batch.total_steps > before_steps
                    or results[target].width() < before_width
                )
        if not progressed and batch.step(boundary) is None:
            break  # nothing refinable (budget headroom exhausted)

    order.sort(key=sort_key)
    return [ranked(index) for index in order[:k]]


def top_k_answers(
    answers: Sequence[Answer],
    registry: VariableRegistry,
    k: int,
    *,
    choose_variable: Optional[VariableSelector] = None,
    initial_steps: int = 4,
    step_growth: int = 2,
    max_total_steps: int = 200_000,
    separation: float = 0.0,
    engine=None,
) -> List[RankedAnswer]:
    """Deprecated shim: use ``ProbDB(...).query(cq).top_k(k)`` instead.

    Delegates to :func:`rank_answers` — the session path behind
    ``QueryResult.top_k`` — preserving the historical signature and
    results exactly.
    """
    warnings.warn(
        "top_k_answers() is deprecated; use "
        "ProbDB(database).query(query).top_k(k) or "
        "repro.db.topk.rank_answers(engine, answers, k)",
        DeprecationWarning,
        stacklevel=2,
    )
    if engine is None:
        from ..engine import ConfidenceEngine

        engine = ConfidenceEngine(
            registry, epsilon=0.0, choose_variable=choose_variable
        )
    return rank_answers(
        engine,
        answers,
        k,
        initial_steps=initial_steps,
        step_growth=step_growth,
        max_total_steps=max_total_steps,
        separation=separation,
    )
