"""Top-k answer ranking by confidence, driven by anytime bounds.

Ranking answers by confidence is the motivating application of MystiQ's
top-k work (Ré, Dalvi, Suciu; cited as [23] in the paper).  The d-tree
algorithm's *certified intervals* enable the classical interval-pruning
strategy: keep per-answer lower/upper bounds, repeatedly refine the most
ambiguous answer, and stop as soon as the k best answers provably
dominate the rest — usually long before any probability is computed
exactly.

:func:`top_k_answers` implements that loop on top of
:class:`repro.engine.ConfidenceEngine` step budgets: every refinement is
an engine ``compute`` call, so read-once answers resolve exactly in one
shot and the engine's shared decomposition cache makes each successive
budget increase resume almost where the previous round stopped.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.dnf import DNF
from ..core.orders import VariableSelector
from ..core.variables import VariableRegistry

__all__ = ["top_k_answers", "RankedAnswer"]


class RankedAnswer:
    """One ranked answer with its certified probability interval."""

    __slots__ = ("values", "lower", "upper", "steps_spent")

    def __init__(
        self,
        values: Tuple[Hashable, ...],
        lower: float,
        upper: float,
        steps_spent: int,
    ) -> None:
        self.values = values
        self.lower = lower
        self.upper = upper
        self.steps_spent = steps_spent

    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0

    def __repr__(self) -> str:
        return (
            f"RankedAnswer({self.values!r}, "
            f"[{self.lower:.4g}, {self.upper:.4g}])"
        )


def top_k_answers(
    answers: Sequence[Tuple[Tuple[Hashable, ...], DNF]],
    registry: VariableRegistry,
    k: int,
    *,
    choose_variable: Optional[VariableSelector] = None,
    initial_steps: int = 4,
    step_growth: int = 2,
    max_total_steps: int = 200_000,
    separation: float = 0.0,
    engine=None,
) -> List[RankedAnswer]:
    """The k most probable answers, certified by interval separation.

    Parameters
    ----------
    answers:
        ``(answer_values, lineage_dnf)`` pairs, e.g. from
        :func:`repro.db.engine.evaluate_to_dnf`.
    k:
        How many answers to return (all answers when ``k`` ≥ input size).
    initial_steps / step_growth:
        Refinement schedule: each round, the answer whose interval blocks
        the ranking gets its budget multiplied by ``step_growth``.
    max_total_steps:
        Global work ceiling; on exhaustion the current best-effort ranking
        is returned (intervals still sound, separation not certified).
    separation:
        Required gap between the k-th lower bound and the (k+1)-th upper
        bound; zero certifies a weak ordering (ties broken by midpoint).
    engine:
        A :class:`repro.engine.ConfidenceEngine` to refine through; one
        is built from ``registry``/``choose_variable`` when omitted.
        Every refinement routes through ``engine.compute``.

    Returns
    -------
    list[RankedAnswer]
        The top-k answers in descending (certified) order of probability.
    """
    if k <= 0:
        raise ValueError("k must be positive")

    if engine is None:
        from ..engine import ConfidenceEngine

        engine = ConfidenceEngine(
            registry, epsilon=0.0, choose_variable=choose_variable
        )

    states: List[Dict] = []
    for values, dnf in answers:
        states.append(
            {"values": values, "dnf": dnf, "budget": initial_steps,
             "result": None, "spent": 0}
        )

    def refine(state: Dict) -> None:
        result = engine.compute(
            state["dnf"], epsilon=0.0, max_steps=state["budget"]
        )
        state["result"] = result
        state["spent"] = result.steps

    total_spent = 0
    for state in states:
        refine(state)
        total_spent += state["spent"]

    if k >= len(states):
        ranked = sorted(
            states,
            key=lambda s: (-s["result"].upper, -s["result"].lower),
        )
        return [
            RankedAnswer(
                s["values"], s["result"].lower, s["result"].upper, s["spent"]
            )
            for s in ranked
        ]

    while True:
        # Order by optimistic value; the ranking is certified when the
        # k-th pessimistic value dominates every excluded optimistic one.
        states.sort(
            key=lambda s: (-s["result"].upper, -s["result"].lower)
        )
        kth_lower = min(s["result"].lower for s in states[:k])
        best_excluded_upper = max(
            s["result"].upper for s in states[k:]
        )
        if kth_lower >= best_excluded_upper + separation:
            break

        # Refine the widest interval among the answers straddling the
        # boundary (both sides can be at fault).
        boundary = [
            s
            for s in states
            if s["result"].upper > kth_lower - separation
            and s["result"].lower < best_excluded_upper + separation
            and not s["result"].converged
        ]
        if not boundary or total_spent >= max_total_steps:
            break  # fully converged ties or out of budget: best effort
        candidate = max(boundary, key=lambda s: s["result"].width())
        candidate["budget"] *= step_growth
        total_spent -= candidate["spent"]
        refine(candidate)
        total_spent += candidate["spent"]

    states.sort(key=lambda s: (-s["result"].upper, -s["result"].lower))
    return [
        RankedAnswer(
            s["values"], s["result"].lower, s["result"].upper, s["spent"]
        )
        for s in states[:k]
    ]
