"""Query explanation: classify a query and recommend an algorithm.

Section VI of the paper maps out the tractability landscape:

* hierarchical conjunctive queries without self-joins → exact PTIME
  (SPROUT's extensional plans, or d-trees with only ⊗/⊙ nodes);
* IQ inequality queries → exact PTIME via the Lemma 6.8 variable order;
* instances of the hard pattern ``R(X), S(X,Y), T(Y)`` whose middle table
  satisfies Theorem 6.4 → exact PTIME despite the query being #P-hard in
  general;
* everything else → the incremental ε-approximation (Section V).

:func:`explain` runs those classifiers against a query (and optionally
the concrete database, for the data-dependent Theorem 6.4 case) and
returns a structured report used by tools and tests — the decision
procedure a query optimiser would embed.  It is a thin consumer of the
:class:`repro.engine.ConfidenceEngine` planner's query-level strategy
selection; session users reach it as ``ProbDB.explain(query_or_sql)``
or ``QueryResult.explain()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, List, Optional, Tuple

from ..core.dnf import DNF
from ..core.variables import VariableRegistry
from .cq import ConjunctiveQuery, SubGoal, Var, hard_pattern_tractable
from .database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuits import Circuit

__all__ = [
    "explain",
    "rank_influence",
    "QueryExplanation",
    "InfluenceReport",
]


class QueryExplanation:
    """Structured outcome of :func:`explain`.

    Attributes
    ----------
    hierarchical, iq, self_join:
        The Section VI classifications.
    hard_pattern:
        True when the query matches the shape ``R(X), S(X,Y), T(Y)``.
    theorem_6_4:
        For hard-pattern queries with a database: whether the concrete
        S table satisfies Theorem 6.4 (None when not applicable/checked).
    tractable:
        The bottom line: is exact PTIME computation guaranteed?
    recommendation:
        Human-readable algorithm advice.
    engine_strategy, engine_reason:
        The :class:`repro.engine.ConfidenceEngine` ladder rung this query
        is routed to (``sprout`` or ``dtree`` at query level; DNF-level
        rungs like ``read-once`` apply per answer) and why — the planner
        decision ``evaluate_with_confidence`` / ``run_conf_query`` will
        actually take.
    influence:
        ``(answer_values, InfluenceReport)`` per answer when influence
        ranking was requested (``QueryResult.explain``), ``None``
        otherwise.  Each report says whether it ranked by true circuit
        gradients or by the frequency heuristic.
    notes:
        Supporting detail, one line per finding.
    """

    __slots__ = (
        "hierarchical",
        "iq",
        "self_join",
        "hard_pattern",
        "theorem_6_4",
        "tractable",
        "recommendation",
        "engine_strategy",
        "engine_reason",
        "influence",
        "notes",
    )

    def __init__(self) -> None:
        self.hierarchical = False
        self.iq = False
        self.self_join = False
        self.hard_pattern = False
        self.theorem_6_4: Optional[bool] = None
        self.tractable = False
        self.recommendation = ""
        self.engine_strategy = ""
        self.engine_reason = ""
        self.influence: Optional[
            List[Tuple[Tuple[Hashable, ...], "InfluenceReport"]]
        ] = None
        self.notes: List[str] = []

    def __repr__(self) -> str:
        status = "tractable" if self.tractable else "hard"
        return f"QueryExplanation({status}: {self.recommendation})"


class InfluenceReport:
    """Tuples of one answer's lineage ranked by influence on its
    confidence.

    Attributes
    ----------
    method:
        ``"circuit-gradient"`` — true sensitivities
        ``∂confidence/∂p(tuple)`` from one backward sweep of the
        answer's compiled circuit — or ``"frequency-heuristic"`` — the
        fallback ranking by probability-weighted clause occurrence,
        used when no circuit is available.
    entries:
        ``(variable, score)`` in descending ``|score|`` order.  For the
        gradient method the score *is* the derivative (signed:
        positive means raising the tuple's probability raises the
        confidence); heuristic scores are only a ranking currency.
    note:
        One line describing how the ranking was obtained.
    """

    __slots__ = ("method", "entries", "note")

    def __init__(
        self,
        method: str,
        entries: List[Tuple[Hashable, float]],
        note: str,
    ) -> None:
        self.method = method
        self.entries = entries
        self.note = note

    def top(self, count: int) -> List[Tuple[Hashable, float]]:
        return self.entries[:count]

    def __repr__(self) -> str:
        head = ", ".join(
            f"{variable!r}: {score:+.4g}"
            for variable, score in self.entries[:3]
        )
        return f"InfluenceReport({self.method}; {head}, ...)"


def rank_influence(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    circuit: Optional["Circuit"] = None,
    top: Optional[int] = None,
) -> InfluenceReport:
    """Rank the tuples (variables) of a lineage DNF by influence.

    With a compiled ``circuit`` the ranking uses the true gradient
    ``∂P/∂p(tuple)`` — one backward sweep yields every tuple's
    sensitivity at once.  Without one it falls back to the
    probability-weighted occurrence heuristic (how much clause mass a
    variable participates in), which orders reasonably but carries no
    quantitative meaning.  The report names the method used.
    """
    if circuit is not None:
        # One forward+backward sweep yields every atom's adjoint; both
        # rankings derive from it.  Boolean variables get the true
        # d/dp (adj(x=True) − adj(x=False), as Circuit.gradients
        # computes); non-Boolean (e.g. block-independent-disjoint)
        # variables have no single d/dp and are ranked by their
        # strongest per-value derivative so they are not dropped.
        per_variable: dict = {}
        for (name, value), gradient in circuit.atom_gradients().items():
            per_variable.setdefault(name, {})[value] = gradient
        conditioned = set(circuit.conditioned)
        scores: dict = {}
        for name, by_value in per_variable.items():
            if name in conditioned:
                continue
            if name in registry and registry.is_boolean(name):
                scores[name] = by_value.get(True, 0.0) - by_value.get(
                    False, 0.0
                )
            else:
                scores[name] = max(by_value.values(), key=abs)
        entries = sorted(
            scores.items(),
            key=lambda item: (-abs(item[1]), repr(item[0])),
        )
        note = (
            "true sensitivities from one backward circuit sweep "
            "(non-Boolean variables ranked by their strongest "
            "per-value derivative)"
            if circuit.is_exact
            else "sensitivities from a partial circuit (residual leaves "
            "held at their interval midpoint): approximate"
        )
        if top is not None:
            entries = entries[:top]
        return InfluenceReport("circuit-gradient", entries, note)

    scores: dict = {}
    for clause in dnf:
        clause_probability = clause.probability(registry)
        for variable in clause.variables:
            scores[variable] = scores.get(variable, 0.0) + (
                clause_probability
            )
    entries = sorted(
        scores.items(), key=lambda item: (-abs(item[1]), repr(item[0]))
    )
    if top is not None:
        entries = entries[:top]
    return InfluenceReport(
        "frequency-heuristic",
        entries,
        "probability-weighted clause occurrence (no compiled circuit "
        "available; enable EngineConfig.compile_circuits or call "
        "QueryResult.compile() for true gradients)",
    )


def _match_hard_pattern(query: ConjunctiveQuery):
    """Detect ``R(X), S(X,Y), T(Y)`` up to subgoal order and extra local
    variables; returns ``(s_subgoal, x_var, y_var)`` or ``None``."""
    if len(query.subgoals) != 3 or query.has_self_join():
        return None
    unary = [
        subgoal for subgoal in query.subgoals if len(subgoal.variables()) == 1
    ]
    binary = [
        subgoal for subgoal in query.subgoals if len(subgoal.variables()) == 2
    ]
    if len(unary) != 2 or len(binary) != 1:
        return None
    (s_subgoal,) = binary
    s_vars = s_subgoal.variables()
    unary_vars = {subgoal.variables()[0] for subgoal in unary}
    if set(s_vars) != unary_vars:
        return None
    x_var, y_var = s_vars
    return s_subgoal, x_var, y_var


def explain(
    query: ConjunctiveQuery, database: Optional[Database] = None
) -> QueryExplanation:
    """Classify ``query`` and recommend a confidence algorithm.

    With a ``database``, the data-dependent Theorem 6.4 condition is also
    checked for hard-pattern queries.
    """
    from ..engine import ConfidenceEngine

    report = QueryExplanation()
    report.self_join = query.has_self_join()
    report.hierarchical = query.is_hierarchical()
    report.iq = query.is_iq()
    report.engine_strategy, report.engine_reason = (
        ConfidenceEngine.select_query_strategy(query, database)
    )
    report.notes.append(
        f"engine routes this query via {report.engine_strategy!r}: "
        f"{report.engine_reason}"
    )

    if report.self_join:
        report.notes.append(
            "query contains self-joins: outside every known tractable "
            "class; Section V approximation applies"
        )
        report.recommendation = (
            "incremental d-tree approximation (choose ε per application)"
        )
        return report

    inequalities_are_local = all(
        any(
            set(inequality.variables()) <= set(subgoal.variables())
            for subgoal in query.subgoals
        )
        for inequality in query.inequalities
    )

    if report.hierarchical and inequalities_are_local:
        # Local inequalities are mere selections: the hierarchical result
        # applies directly (and SPROUT handles them as row filters).
        report.tractable = True
        if query.inequalities:
            report.notes.append(
                "hierarchical (Def. 6.1) with only local inequality "
                "selections: exact PTIME"
            )
        else:
            report.notes.append(
                "hierarchical without self-joins (Def. 6.1): exact PTIME"
            )
        report.recommendation = (
            "SPROUT extensional plan, or d-tree(0) — compiles with ⊗/⊙ "
            "only (Prop. 6.3)"
        )
        return report

    if report.iq and query.inequalities:
        report.tractable = True
        report.notes.append(
            "IQ query (Defs. 6.5/6.6): exact PTIME with the Lemma 6.8 "
            "variable-elimination order (Thm. 6.9)"
        )
        report.recommendation = (
            "d-tree(0) with make_variable_selector(database provenance)"
        )
        return report

    if report.hierarchical:
        report.notes.append(
            "hierarchical skeleton but cross-subgoal inequalities outside "
            "the max-one property"
        )

    pattern = _match_hard_pattern(query)
    if pattern is not None:
        report.hard_pattern = True
        s_subgoal, x_var, y_var = pattern
        report.notes.append(
            "matches the prototypical #P-hard pattern R(X), S(X,Y), T(Y)"
        )
        if database is not None and s_subgoal.relation in database:
            relation = database[s_subgoal.relation]
            positions = {
                term: index
                for index, term in enumerate(s_subgoal.terms)
                if isinstance(term, Var)
            }
            x_attr = relation.attributes[positions[x_var]]
            y_attr = relation.attributes[positions[y_var]]
            report.theorem_6_4 = hard_pattern_tractable(
                relation, x_attr, y_attr
            )
            if report.theorem_6_4:
                report.tractable = True
                report.notes.append(
                    "Theorem 6.4 holds on this database: every bipartite "
                    "component of S is functional, or complete with "
                    "deterministic S — lineage factorizes into 1OF"
                )
                report.recommendation = (
                    "d-tree(0): compiles with ⊗/⊙ only on this data"
                )
                return report
            report.notes.append(
                "Theorem 6.4 fails on this database: the instance is "
                "genuinely hard"
            )

    report.recommendation = (
        "incremental d-tree approximation (choose ε per application)"
    )
    return report
