"""Probabilistic relations: tuple-independent, BID, and c-tables.

A :class:`Relation` is a bag of rows, each annotated with a lineage
:class:`~repro.core.formulas.Formula` over the random variables of a shared
:class:`~repro.core.variables.VariableRegistry`.  Three constructors cover
the representation systems of the paper (Section VI.A):

* :meth:`Relation.certain` — a deterministic relation (lineage ``⊤``);
* :meth:`Relation.tuple_independent` — one fresh Boolean variable per row
  (Fig. 5a);
* :meth:`Relation.block_independent_disjoint` — one fresh finite-domain
  variable per block, with one domain value per alternative plus an
  implicit "none" alternative when the block's probabilities sum below
  one (Fig. 5b);
* arbitrary lineage rows (a c-table) via the plain constructor.

Variable names are ``(relation_name, key)`` pairs — hashable, readable,
and carrying the provenance that the IQ variable order of Lemma 6.8 needs
(see :attr:`Relation.variable_origin`).
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.events import Atom
from ..core.formulas import TRUE, AtomNode, Formula, TrueNode
from ..core.variables import VariableRegistry

__all__ = ["Relation", "Row"]

Row = Tuple[Hashable, ...]


class Relation:
    """A named relation whose rows carry event lineage.

    Attributes
    ----------
    name:
        Relation name (used in provenance and error messages).
    attributes:
        Column names, in order.
    rows:
        List of ``(values, lineage)`` pairs.
    variable_origin:
        ``variable -> relation name`` for every lineage variable minted by
        this relation's constructors.
    """

    __slots__ = ("name", "attributes", "rows", "variable_origin",
                 "_simple_lineage_memo")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Tuple[Row, Formula]] = (),
        variable_origin: Optional[Dict[Hashable, str]] = None,
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        self.rows: List[Tuple[Row, Formula]] = []
        self.variable_origin: Dict[Hashable, str] = (
            dict(variable_origin) if variable_origin else {}
        )
        self._simple_lineage_memo: Optional[Tuple[int, bool]] = None
        for values, lineage in rows:
            self._append(values, lineage)

    def _append(self, values: Sequence[Hashable], lineage: Formula) -> None:
        values = tuple(values)
        if len(values) != len(self.attributes):
            raise ValueError(
                f"row {values!r} has {len(values)} values; relation "
                f"{self.name!r} has {len(self.attributes)} attributes"
            )
        self.rows.append((values, lineage))

    def has_simple_lineage(self) -> bool:
        """True when every row's lineage is a bare atom or ``⊤``.

        This is the tuple-independent/certain row shape SPROUT requires.
        The verdict is memoised per row count — rows are append-only
        throughout the library, so a matching count means no new rows —
        sparing the planner a full relation scan per query.  Should
        external code ever replace a row in place (same count), a stale
        "simple" verdict cannot corrupt results: SPROUT itself re-checks
        every row's lineage and the planner falls back on its
        ``UnsafeQueryError``.
        """
        memo = self._simple_lineage_memo
        count = len(self.rows)
        if memo is not None and memo[0] == count:
            return memo[1]
        verdict = all(
            isinstance(lineage, (AtomNode, TrueNode))
            for _values, lineage in self.rows
        )
        self._simple_lineage_memo = (count, verdict)
        return verdict

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def certain(
        cls,
        name: str,
        attributes: Sequence[str],
        tuples: Iterable[Sequence[Hashable]],
    ) -> "Relation":
        """A deterministic relation: every row's lineage is ``⊤``."""
        return cls(
            name,
            attributes,
            ((tuple(values), TRUE) for values in tuples),
        )

    @classmethod
    def tuple_independent(
        cls,
        name: str,
        attributes: Sequence[str],
        tuples_with_probabilities: Iterable[Tuple[Sequence[Hashable], float]],
        registry: VariableRegistry,
    ) -> "Relation":
        """One fresh Boolean variable per row (Fig. 5a of the paper).

        Probabilities of exactly 1.0 produce certain rows (lineage ``⊤``)
        rather than degenerate Boolean variables.
        """
        relation = cls(name, attributes)
        for index, (values, probability) in enumerate(
            tuples_with_probabilities
        ):
            if probability >= 1.0:
                relation._append(tuple(values), TRUE)
                continue
            variable = (name, index)
            registry.add_boolean(variable, probability)
            relation.variable_origin[variable] = name
            relation._append(tuple(values), AtomNode(Atom(variable, True)))
        return relation

    @classmethod
    def block_independent_disjoint(
        cls,
        name: str,
        attributes: Sequence[str],
        blocks: Mapping[Hashable, Sequence[Tuple[Sequence[Hashable], float]]],
        registry: VariableRegistry,
    ) -> "Relation":
        """One finite-domain variable per block (Fig. 5b of the paper).

        Each block maps a key to its alternatives ``(tuple, probability)``.
        Alternatives within a block are mutually exclusive; blocks are
        independent.  When a block's probabilities sum to less than one the
        remainder becomes an implicit "none of these" domain value.
        """
        relation = cls(name, attributes)
        for block_key, alternatives in blocks.items():
            alternatives = list(alternatives)
            if not alternatives:
                continue
            total = sum(probability for _values, probability in alternatives)
            if total > 1.0 + 1e-9:
                raise ValueError(
                    f"block {block_key!r} of {name!r} has total "
                    f"probability {total} > 1"
                )
            variable = (name, block_key)
            distribution: Dict[Hashable, float] = {
                index: probability
                for index, (_values, probability) in enumerate(alternatives)
                if probability > 0.0
            }
            remainder = 1.0 - total
            if remainder > 1e-12:
                distribution["__none__"] = remainder
            registry.add_variable(variable, distribution)
            relation.variable_origin[variable] = name
            for index, (values, probability) in enumerate(alternatives):
                if probability <= 0.0:
                    continue
                relation._append(
                    tuple(values), AtomNode(Atom(variable, index))
                )
        return relation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Row, Formula]]:
        return iter(self.rows)

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def column(self, attribute: str) -> List[Hashable]:
        """All values of one column (with duplicates, row order)."""
        index = self.attribute_index(attribute)
        return [values[index] for values, _lineage in self.rows]

    def renamed(self, new_name: str) -> "Relation":
        """A shallow copy under a different name (variables keep their
        original provenance)."""
        return Relation(
            new_name, self.attributes, list(self.rows), self.variable_origin
        )

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {list(self.attributes)!r}, "
            f"{len(self.rows)} rows)"
        )
