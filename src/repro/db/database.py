"""A probabilistic database: named relations over one probability space."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional

from ..core.variables import VariableRegistry
from .relation import Relation

__all__ = ["Database"]


class Database:
    """A collection of relations sharing a :class:`VariableRegistry`.

    The database also aggregates per-variable provenance
    (``variable -> relation name``), which the Lemma 6.8 variable order
    consumes via :meth:`variable_origins`.
    """

    __slots__ = ("registry", "_relations")

    def __init__(
        self,
        registry: Optional[VariableRegistry] = None,
        relations: Iterable[Relation] = (),
    ) -> None:
        self.registry = registry if registry is not None else VariableRegistry()
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> Relation:
        """Register a relation (name must be fresh)."""
        if relation.name in self._relations:
            raise ValueError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        return relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def relation_names(self) -> Iterator[str]:
        return iter(self._relations)

    def variable_origins(self) -> Dict[Hashable, str]:
        """Merged ``variable -> relation name`` provenance map."""
        origins: Dict[Hashable, str] = {}
        for relation in self._relations.values():
            origins.update(relation.variable_origin)
        return origins

    def __repr__(self) -> str:
        names = ", ".join(sorted(self._relations))
        return f"Database({names})"
