"""Positive relational algebra with lineage (paper, Section VI.A).

The operators manipulate :class:`~repro.db.relation.Relation` values and
combine lineage the standard way for c-tables:

* selection keeps lineage unchanged;
* projection with duplicate elimination ``∨``-combines the lineage of
  merged rows;
* joins and products ``∧``-combine lineage;
* union ``∨``-combines lineage of identical tuples across inputs.

``conf`` closes the loop: it converts each answer's lineage to DNF and
computes its probability with a pluggable confidence method (the d-tree
algorithms or the Monte-Carlo baselines), mirroring the paper's
``select conf() …`` queries.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.approx import ApproximationResult, approximate_probability
from ..core.dnf import DNF
from ..core.formulas import Formula, conj, disj
from ..core.variables import VariableRegistry
from .relation import Relation, Row

__all__ = [
    "select",
    "project",
    "natural_join",
    "theta_join",
    "product",
    "union",
    "rename_attributes",
    "conf",
]


def select(
    relation: Relation,
    predicate: Callable[[Dict[str, Hashable]], bool],
    name: Optional[str] = None,
) -> Relation:
    """σ — keep rows whose attribute dict satisfies ``predicate``."""
    attributes = relation.attributes
    rows = []
    for values, lineage in relation.rows:
        record = dict(zip(attributes, values))
        if predicate(record):
            rows.append((values, lineage))
    return Relation(
        name or f"σ({relation.name})",
        attributes,
        rows,
        relation.variable_origin,
    )


def project(
    relation: Relation,
    attributes: Sequence[str],
    *,
    deduplicate: bool = True,
    name: Optional[str] = None,
) -> Relation:
    """π — project onto ``attributes``; duplicates ``∨``-merge lineage."""
    indices = [relation.attribute_index(attribute) for attribute in attributes]
    if not deduplicate:
        rows = [
            (tuple(values[i] for i in indices), lineage)
            for values, lineage in relation.rows
        ]
        return Relation(
            name or f"π({relation.name})",
            attributes,
            rows,
            relation.variable_origin,
        )
    merged: Dict[Row, List[Formula]] = {}
    order: List[Row] = []
    for values, lineage in relation.rows:
        key = tuple(values[i] for i in indices)
        if key not in merged:
            merged[key] = []
            order.append(key)
        merged[key].append(lineage)
    rows = [(key, disj(*merged[key])) for key in order]
    return Relation(
        name or f"π({relation.name})",
        attributes,
        rows,
        relation.variable_origin,
    )


def _merged_origin(left: Relation, right: Relation) -> Dict[Hashable, str]:
    origin = dict(left.variable_origin)
    origin.update(right.variable_origin)
    return origin


def natural_join(
    left: Relation, right: Relation, name: Optional[str] = None
) -> Relation:
    """⋈ — equi-join on all shared attribute names (hash-based)."""
    shared = [
        attribute
        for attribute in left.attributes
        if attribute in right.attributes
    ]
    left_key = [left.attribute_index(a) for a in shared]
    right_key = [right.attribute_index(a) for a in shared]
    right_extra = [
        index
        for index, attribute in enumerate(right.attributes)
        if attribute not in shared
    ]
    out_attributes = list(left.attributes) + [
        right.attributes[i] for i in right_extra
    ]

    index: Dict[Tuple[Hashable, ...], List[Tuple[Row, Formula]]] = {}
    for values, lineage in right.rows:
        key = tuple(values[i] for i in right_key)
        index.setdefault(key, []).append((values, lineage))

    rows = []
    for values, lineage in left.rows:
        key = tuple(values[i] for i in left_key)
        for right_values, right_lineage in index.get(key, ()):
            combined = values + tuple(right_values[i] for i in right_extra)
            rows.append((combined, conj(lineage, right_lineage)))
    return Relation(
        name or f"({left.name} ⋈ {right.name})",
        out_attributes,
        rows,
        _merged_origin(left, right),
    )


def theta_join(
    left: Relation,
    right: Relation,
    condition: Callable[[Dict[str, Hashable], Dict[str, Hashable]], bool],
    name: Optional[str] = None,
) -> Relation:
    """⋈_θ — nested-loop join under an arbitrary condition.

    Attribute names must be disjoint (rename first if needed); this is the
    operator the IQ inequality-join queries use.
    """
    overlap = set(left.attributes) & set(right.attributes)
    if overlap:
        raise ValueError(
            f"theta_join requires disjoint attributes; shared: {overlap}"
        )
    out_attributes = list(left.attributes) + list(right.attributes)
    rows = []
    for left_values, left_lineage in left.rows:
        left_record = dict(zip(left.attributes, left_values))
        for right_values, right_lineage in right.rows:
            right_record = dict(zip(right.attributes, right_values))
            if condition(left_record, right_record):
                rows.append(
                    (
                        left_values + right_values,
                        conj(left_lineage, right_lineage),
                    )
                )
    return Relation(
        name or f"({left.name} ⋈θ {right.name})",
        out_attributes,
        rows,
        _merged_origin(left, right),
    )


def product(
    left: Relation, right: Relation, name: Optional[str] = None
) -> Relation:
    """× — cartesian product (disjoint attribute names required)."""
    return theta_join(
        left,
        right,
        lambda _l, _r: True,
        name=name or f"({left.name} × {right.name})",
    )


def union(
    left: Relation, right: Relation, name: Optional[str] = None
) -> Relation:
    """∪ — set union; identical tuples ``∨``-merge their lineage."""
    if left.attributes != right.attributes:
        raise ValueError(
            "union requires identical attribute lists: "
            f"{left.attributes} vs {right.attributes}"
        )
    merged: Dict[Row, List[Formula]] = {}
    order: List[Row] = []
    for values, lineage in list(left.rows) + list(right.rows):
        if values not in merged:
            merged[values] = []
            order.append(values)
        merged[values].append(lineage)
    rows = [(values, disj(*merged[values])) for values in order]
    return Relation(
        name or f"({left.name} ∪ {right.name})",
        left.attributes,
        rows,
        _merged_origin(left, right),
    )


def rename_attributes(
    relation: Relation,
    mapping: Dict[str, str],
    name: Optional[str] = None,
) -> Relation:
    """ρ — rename attributes according to ``mapping``."""
    attributes = [mapping.get(a, a) for a in relation.attributes]
    if len(set(attributes)) != len(attributes):
        raise ValueError(f"renaming produces duplicate attributes: {attributes}")
    return Relation(
        name or relation.name,
        attributes,
        list(relation.rows),
        relation.variable_origin,
    )


ConfidenceMethod = Callable[[DNF, VariableRegistry], float]


def conf(
    relation: Relation,
    registry: VariableRegistry,
    *,
    method: Optional[ConfidenceMethod] = None,
    epsilon: float = 0.0,
    error_kind: str = "absolute",
) -> List[Tuple[Row, float]]:
    """The ``conf()`` aggregate: per distinct tuple, ``P(lineage)``.

    Duplicate tuples are ``∨``-merged first (confidence is a projection
    with duplicate elimination).  The default method runs the paper's
    d-tree algorithm at the requested ``epsilon``; pass a custom ``method``
    to plug in a baseline.
    """
    deduplicated = project(relation, list(relation.attributes))
    results: List[Tuple[Row, float]] = []
    for values, lineage in deduplicated.rows:
        dnf = lineage.to_dnf()
        if method is not None:
            probability = method(dnf, registry)
        else:
            outcome: ApproximationResult = approximate_probability(
                dnf, registry, epsilon=epsilon, error_kind=error_kind
            )
            probability = outcome.estimate
        results.append((values, probability))
    return results
