"""Conjunctive-query evaluation with lineage tracking.

The engine evaluates a :class:`~repro.db.cq.ConjunctiveQuery` against a
:class:`~repro.db.database.Database` and returns, per distinct answer
tuple, the lineage formula whose probability is the tuple's confidence —
the reduction from query evaluation to DNF probability that the paper's
Section VI.A recalls.

Joins are hash-based: each subgoal indexes its relation's rows by the
positions of already-bound variables, and inequality predicates are applied
as soon as both sides are bound.  Lineage is conjoined along a join path
and disjoined across derivations of the same answer.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.dnf import DNF
from ..core.formulas import Formula, conj, disj
from ..core.orders import VariableSelector, make_variable_selector
from .cq import Const, ConjunctiveQuery, Inequality, SubGoal, Var
from .database import Database

__all__ = [
    "evaluate",
    "evaluate_to_dnf",
    "evaluate_with_confidence",
    "answer_selector",
    "QueryAnswer",
]


class QueryAnswer:
    """One answer tuple with its lineage."""

    __slots__ = ("values", "lineage")

    def __init__(self, values: Tuple[Hashable, ...], lineage: Formula) -> None:
        self.values = values
        self.lineage = lineage

    def __repr__(self) -> str:
        return f"QueryAnswer({self.values!r})"


def _plan_inequalities(
    query: ConjunctiveQuery,
) -> List[Tuple[int, Inequality]]:
    """Pair each inequality with the earliest subgoal index after which
    both its variables are bound."""
    bound: List[Var] = []
    planned: List[Tuple[int, Inequality]] = []
    remaining = list(query.inequalities)
    for index, subgoal in enumerate(query.subgoals):
        for var in subgoal.variables():
            if var not in bound:
                bound.append(var)
        still_waiting = []
        for inequality in remaining:
            if all(var in bound for var in inequality.variables()):
                planned.append((index, inequality))
            else:
                still_waiting.append(inequality)
        remaining = still_waiting
    if remaining:
        raise ValueError(
            f"inequalities {remaining!r} use variables not bound by any "
            "subgoal"
        )
    return planned


def evaluate(query: ConjunctiveQuery, database: Database) -> List[QueryAnswer]:
    """All distinct answers of ``query`` with ``∨``-merged lineage."""
    checks_after = _plan_inequalities(query)

    # Partial results: (binding, lineage) pairs.
    partials: List[Tuple[Dict[Var, Hashable], Formula]] = [({}, None)]

    for index, subgoal in enumerate(query.subgoals):
        relation = database[subgoal.relation]
        if len(relation.attributes) != len(subgoal.terms):
            raise ValueError(
                f"subgoal {subgoal!r} has {len(subgoal.terms)} terms but "
                f"relation {relation.name!r} has "
                f"{len(relation.attributes)} attributes"
            )
        # Which term positions are already determined (constants, repeated
        # variables within this subgoal, or variables bound earlier)?
        bound_vars = set(partials[0][0]) if partials else set()
        key_positions: List[int] = []
        first_occurrence: Dict[Var, int] = {}
        for position, term in enumerate(subgoal.terms):
            if isinstance(term, Const):
                key_positions.append(position)
            elif term in bound_vars:
                key_positions.append(position)
            elif term in first_occurrence:
                # Repeated new variable inside this subgoal: equality is
                # enforced row-wise below, not via the join key.
                pass
            else:
                first_occurrence[term] = position
        new_var_positions = list(first_occurrence.items())

        # Index relation rows by the values at all key positions that are
        # constants or previously-bound variables; constants are resolved
        # immediately, bound variables per partial result.
        const_positions = [
            (position, subgoal.terms[position].value)
            for position in key_positions
            if isinstance(subgoal.terms[position], Const)
        ]
        var_key_positions = [
            position
            for position in key_positions
            if isinstance(subgoal.terms[position], Var)
        ]

        index_map: Dict[Tuple[Hashable, ...], List[int]] = {}
        usable_rows: List[Tuple[Tuple[Hashable, ...], Formula]] = []
        for row_values, row_lineage in relation.rows:
            if any(
                row_values[position] != value
                for position, value in const_positions
            ):
                continue
            # Repeated variables inside one subgoal must match themselves.
            consistent = True
            seen: Dict[Var, Hashable] = {}
            for position, term in enumerate(subgoal.terms):
                if isinstance(term, Var):
                    if term in seen and seen[term] != row_values[position]:
                        consistent = False
                        break
                    seen[term] = row_values[position]
            if not consistent:
                continue
            row_id = len(usable_rows)
            usable_rows.append((row_values, row_lineage))
            key = tuple(
                row_values[position] for position in var_key_positions
            )
            index_map.setdefault(key, []).append(row_id)

        key_vars = [subgoal.terms[position] for position in var_key_positions]
        checks_now = [
            inequality for at, inequality in checks_after if at == index
        ]

        next_partials: List[Tuple[Dict[Var, Hashable], Formula]] = []
        for binding, lineage in partials:
            key = tuple(binding[var] for var in key_vars)
            for row_id in index_map.get(key, ()):
                row_values, row_lineage = usable_rows[row_id]
                new_binding = dict(binding)
                for var, position in new_var_positions:
                    new_binding[var] = row_values[position]
                if not all(
                    inequality.holds(new_binding)
                    for inequality in checks_now
                ):
                    continue
                combined = (
                    row_lineage
                    if lineage is None
                    else conj(lineage, row_lineage)
                )
                next_partials.append((new_binding, combined))
        partials = next_partials
        if not partials:
            break

    # Group by head values; Boolean queries group everything into ().
    merged: Dict[Tuple[Hashable, ...], List[Formula]] = {}
    order: List[Tuple[Hashable, ...]] = []
    for binding, lineage in partials:
        answer = tuple(binding[var] for var in query.head)
        if answer not in merged:
            merged[answer] = []
            order.append(answer)
        merged[answer].append(
            lineage if lineage is not None else conj()
        )
    return [
        QueryAnswer(answer, disj(*merged[answer])) for answer in order
    ]


def evaluate_to_dnf(
    query: ConjunctiveQuery, database: Database
) -> List[Tuple[Tuple[Hashable, ...], DNF]]:
    """Answers as ``(tuple, lineage DNF)`` pairs."""
    return [
        (answer.values, answer.lineage.to_dnf())
        for answer in evaluate(query, database)
    ]


def answer_selector(database: Database) -> VariableSelector:
    """A Shannon-pivot selector wired with this database's provenance.

    Tries the Lemma 6.8 IQ order first (using the ``variable → relation``
    origins of the database), falling back to max frequency — the
    composite strategy of Section IV.
    """
    return make_variable_selector(database.variable_origins())


def evaluate_with_confidence(
    query: ConjunctiveQuery,
    database: Database,
    *,
    engine=None,
    epsilon: Optional[float] = None,
    error_kind: Optional[str] = None,
    max_steps: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    **engine_kwargs,
):
    """Deprecated shim: use ``ProbDB(database).query(query).confidences()``.

    Delegates to the :class:`repro.db.session.ProbDB` session path and
    returns the same ``(answer_values, EngineResult)`` pairs it always
    did.  ``engine_kwargs`` are :class:`repro.engine.EngineConfig`
    fields used to build the session's engine; they cannot be combined
    with an explicit ``engine``.
    """
    import warnings

    warnings.warn(
        "evaluate_with_confidence() is deprecated; use "
        "ProbDB(database).query(query).confidences(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import ConfidenceEngine
    from .session import ProbDB

    if engine is None:
        engine = ConfidenceEngine.for_database(database, **engine_kwargs)
    elif engine_kwargs:
        raise TypeError(
            "engine_kwargs configure a new engine and are ignored when "
            f"one is passed; got {sorted(engine_kwargs)}"
        )
    session = ProbDB(database, engine=engine)
    return session.query(query).confidences(
        epsilon,
        error_kind=error_kind,
        max_steps=max_steps,
        deadline_seconds=deadline_seconds,
    )
