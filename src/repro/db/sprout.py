"""SPROUT-style exact confidence computation for hierarchical queries.

The paper benchmarks its generic d-tree operator against SPROUT, the
query-aware exact operator of [Olteanu, Huang, Koch; ICDE 2009]: for
hierarchical conjunctive queries without self-joins on tuple-independent
databases, confidence can be computed *extensionally*, by an evaluation
plan derived from the query's hierarchy — without ever materialising
lineage.

This module reproduces that operator:

* an answer's confidence is computed by recursive decomposition of the
  (head-instantiated, hence Boolean) query:

  - subgoals that share no unbound variable form independent groups whose
    probabilities multiply (independent-and on disjoint relations — no
    self-joins means distinct relations, hence disjoint tuple variables);
  - within a group, a *root* variable occurring in every subgoal is
    eliminated: distinct root values touch disjoint sets of tuples, so the
    group probability is an independent-or over the root's candidate
    values;
  - a fully bound subgoal contributes the probability that at least one
    matching row is present.

The recursion mirrors SPROUT's safe plans: its cost is polynomial in the
data (each level partitions the remaining rows by the root value).  A
non-hierarchical query (or one with self-joins) is rejected with
:class:`UnsafeQueryError` — that is precisely when the d-tree algorithm is
needed.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.formulas import AtomNode, Formula, TrueNode
from ..core.variables import VariableRegistry
from .cq import Const, ConjunctiveQuery, SubGoal, Var
from .database import Database
from .engine import evaluate

__all__ = ["sprout_confidence", "UnsafeQueryError"]


class UnsafeQueryError(ValueError):
    """The query is outside SPROUT's tractable class."""


def _row_probability(lineage: Formula, registry: VariableRegistry) -> float:
    """Probability of one tuple-independent row's lineage."""
    if isinstance(lineage, TrueNode):
        return 1.0
    if isinstance(lineage, AtomNode):
        return lineage.atom.probability(registry)
    raise UnsafeQueryError(
        "SPROUT requires tuple-independent (or certain) input rows; found "
        f"composite lineage {lineage!r}"
    )


class _Goal:
    """A subgoal with its candidate rows, filtered as variables bind."""

    __slots__ = ("terms", "rows")

    def __init__(
        self,
        terms: Sequence,
        rows: List[Tuple[Tuple[Hashable, ...], float]],
    ) -> None:
        self.terms = tuple(terms)
        self.rows = rows

    def unbound_variables(self, binding: Dict[Var, Hashable]) -> Set[Var]:
        return {
            term
            for term in self.terms
            if isinstance(term, Var) and term not in binding
        }

    def restrict(self, var: Var, value: Hashable) -> "_Goal":
        positions = [
            position
            for position, term in enumerate(self.terms)
            if term == var
        ]
        rows = [
            row
            for row in self.rows
            if all(row[0][position] == value for position in positions)
        ]
        return _Goal(self.terms, rows)

    def values_of(self, var: Var) -> Set[Hashable]:
        positions = [
            position
            for position, term in enumerate(self.terms)
            if term == var
        ]
        position = positions[0]
        return {row[0][position] for row in self.rows}


def _group_probability(
    goals: List[_Goal], binding: Dict[Var, Hashable], depth: int
) -> float:
    """Probability of a connected group of subgoals (all must match)."""
    # Split into connected components on the *unbound* variables.
    unbound_sets = [goal.unbound_variables(binding) for goal in goals]

    # Fully bound goals are independent of everything else.
    probability = 1.0
    open_goals: List[_Goal] = []
    open_vars: List[Set[Var]] = []
    for goal, unbound in zip(goals, unbound_sets):
        if unbound:
            open_goals.append(goal)
            open_vars.append(unbound)
            continue
        # All terms bound: the goal holds iff at least one matching row is
        # in the world.  Matching rows are independent tuples.
        miss = 1.0
        for _values, row_probability in goal.rows:
            miss *= 1.0 - row_probability
        probability *= 1.0 - miss
        if probability == 0.0:
            return 0.0

    if not open_goals:
        return probability

    # Connected components among open goals.
    assigned = [-1] * len(open_goals)
    component = 0
    for start in range(len(open_goals)):
        if assigned[start] >= 0:
            continue
        frontier_vars = set(open_vars[start])
        assigned[start] = component
        changed = True
        while changed:
            changed = False
            for other in range(len(open_goals)):
                if assigned[other] >= 0:
                    continue
                if open_vars[other] & frontier_vars:
                    assigned[other] = component
                    frontier_vars |= open_vars[other]
                    changed = True
        component += 1

    for comp in range(component):
        members = [
            goal
            for index, goal in enumerate(open_goals)
            if assigned[index] == comp
        ]
        member_vars: Set[Var] = set()
        for index, goal in enumerate(open_goals):
            if assigned[index] == comp:
                member_vars |= open_vars[index]

        if len(members) == 1:
            # A lone subgoal holds iff at least one of its (independent)
            # matching rows is present — no recursion over local values.
            miss = 1.0
            for _values, row_probability in members[0].rows:
                miss *= 1.0 - row_probability
            probability *= 1.0 - miss
            if probability == 0.0:
                return 0.0
            continue

        # Root variable: occurs in every member subgoal (hierarchy).
        roots = [
            var
            for var in member_vars
            if all(var in goal.unbound_variables(binding) for goal in members)
        ]
        if not roots:
            raise UnsafeQueryError(
                "no root variable for a connected subgoal group — "
                "the query is not hierarchical"
            )
        root = sorted(roots, key=lambda var: var.name)[0]

        # Candidate values: the root must match in every member subgoal.
        candidate_values: Optional[Set[Hashable]] = None
        for goal in members:
            values = goal.values_of(root)
            candidate_values = (
                values
                if candidate_values is None
                else candidate_values & values
            )
        assert candidate_values is not None

        # Distinct root values touch disjoint tuples: independent-or.
        miss = 1.0
        for value in sorted(candidate_values, key=repr):
            restricted = [goal.restrict(root, value) for goal in members]
            sub_binding = dict(binding)
            sub_binding[root] = value
            miss *= 1.0 - _group_probability(
                restricted, sub_binding, depth + 1
            )
        probability *= 1.0 - miss
        if probability == 0.0:
            return 0.0
    return probability


def sprout_confidence(
    query: ConjunctiveQuery,
    database: Database,
) -> List[Tuple[Tuple[Hashable, ...], float]]:
    """Exact per-answer confidence via SPROUT's extensional evaluation.

    Requires a hierarchical conjunctive query without self-joins or
    inequalities on tuple-independent (or certain) relations; raises
    :class:`UnsafeQueryError` otherwise.
    """
    if query.has_self_join():
        raise UnsafeQueryError("SPROUT does not support self-joins")
    if not query.is_hierarchical():
        raise UnsafeQueryError(f"query {query!r} is not hierarchical")

    # Inequalities are supported only as *selections*: every variable of an
    # inequality must be local to a single subgoal, where the predicate
    # becomes a row filter.  Cross-subgoal inequality joins belong to the
    # IQ algorithm (d-trees with the Lemma 6.8 order), not to SPROUT.
    local_checks: Dict[int, List] = {}
    for inequality in query.inequalities:
        ineq_vars = set(inequality.variables())
        home = None
        for index, subgoal in enumerate(query.subgoals):
            if ineq_vars <= set(subgoal.variables()):
                home = index
                break
        if home is None:
            raise UnsafeQueryError(
                f"inequality {inequality!r} joins subgoals; this SPROUT "
                "operator covers equality joins and local selections only"
            )
        local_checks.setdefault(home, []).append(inequality)

    registry = database.registry

    # Distinct answers come from ordinary evaluation; the confidence of
    # each is then computed extensionally with head variables fixed.
    answers = evaluate(query, database)
    results: List[Tuple[Tuple[Hashable, ...], float]] = []
    for answer in answers:
        binding: Dict[Var, Hashable] = dict(zip(query.head, answer.values))
        goals: List[_Goal] = []
        for goal_index, subgoal in enumerate(query.subgoals):
            relation = database[subgoal.relation]
            checks = local_checks.get(goal_index, ())
            rows: List[Tuple[Tuple[Hashable, ...], float]] = []
            for values, lineage in relation.rows:
                consistent = True
                seen: Dict[Var, Hashable] = {}
                for position, term in enumerate(subgoal.terms):
                    if isinstance(term, Const):
                        if values[position] != term.value:
                            consistent = False
                            break
                    else:
                        if term in binding and values[position] != binding[term]:
                            consistent = False
                            break
                        if term in seen and seen[term] != values[position]:
                            consistent = False
                            break
                        seen[term] = values[position]
                if consistent and checks:
                    row_binding = dict(binding)
                    row_binding.update(seen)
                    consistent = all(
                        inequality.holds(row_binding)
                        for inequality in checks
                    )
                if consistent:
                    rows.append((values, _row_probability(lineage, registry)))
            goals.append(_Goal(subgoal.terms, rows))
        probability = _group_probability(goals, binding, 0)
        results.append((answer.values, probability))
    return results
